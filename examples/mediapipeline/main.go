// Mediapipeline schedules a whole synthetic MediaBench-style application
// with both schedulers and reports the per-application outcome — the
// inner loop of the paper's Figure 11 experiment, at readable size.
//
//	go run ./examples/mediapipeline
package main

import (
	"fmt"
	"log"
	"time"

	"vcsched/internal/bench"
	"vcsched/internal/machine"
	"vcsched/internal/workload"
)

func main() {
	p, err := workload.BenchmarkByName("mpeg2enc")
	if err != nil {
		log.Fatal(err)
	}
	app := p.Generate(0.25, 0)
	fmt.Printf("generated %s: %d superblocks\n\n", p.Name, len(app.Blocks))

	cfg := bench.Config{Thresholds: []time.Duration{100 * time.Millisecond, 1 * time.Second, 3 * time.Second}}
	for _, m := range machine.EvaluationConfigs() {
		res := bench.RunApp(app, m, cfg)
		th := cfg.Thresholds[len(cfg.Thresholds)-1]
		vcBlocks, wins, losses := 0, 0, 0
		var slowest time.Duration
		for _, b := range res.Blocks {
			if b.UseVC(th) {
				vcBlocks++
				if b.VCAWCT < b.CARSAWCT {
					wins++
				} else if b.VCAWCT > b.CARSAWCT {
					losses++
				}
			}
			if b.VCTime > slowest {
				slowest = b.VCTime
			}
		}
		fmt.Printf("%-18s speed-up %.4f | VC scheduled %d/%d blocks (better on %d, worse on %d), slowest block %v\n",
			m.Name, res.Speedup(th), vcBlocks, len(res.Blocks), wins, losses, slowest.Round(time.Millisecond))
	}
}
