// Quickstart: build a small superblock with the ir.Builder, schedule it
// on a 2-cluster VLIW with the virtual-cluster scheduler, and print the
// resulting schedule.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vcsched/internal/core"
	"vcsched/internal/ir"
	"vcsched/internal/machine"
)

func main() {
	// A superblock computing two independent chains that meet at a
	// compare-and-branch, with one early side exit.
	b := ir.NewBuilder("quickstart")
	load1 := b.Instr("load1", ir.Mem, 2)
	load2 := b.Instr("load2", ir.Mem, 2)
	add1 := b.Instr("add1", ir.Int, 1)
	add2 := b.Instr("add2", ir.Int, 1)
	guard := b.Exit("guard", 2, 0.1) // rarely-taken early exit
	mul := b.Instr("mul", ir.Int, 1)
	cmp := b.Instr("cmp", ir.Int, 1)
	exit := b.Exit("exit", 2, 0.9)
	b.Data(load1, add1).Data(load2, add2)
	b.Data(add1, guard)
	b.Data(add1, mul).Data(add2, mul)
	b.Data(mul, cmp).Data(cmp, exit)
	b.Ctrl(guard, exit)
	sb, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}

	m := machine.TwoCluster1Lat()
	fmt.Printf("scheduling %q (%d instructions) on %s\n\n", sb.Name, sb.N(), m)

	s, stats, err := core.Schedule(sb, m, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		log.Fatal(err) // never: Schedule validates before returning
	}

	fmt.Print(s.Format())
	fmt.Printf("\nAWCT %.3f (dependence-only lower bound %.3f), %d AWCT value(s) tried, %d communication(s)\n",
		s.AWCT(), sb.CriticalAWCT(), stats.AWCTTried, s.NumComms())
}
