// Paperexample walks through the paper's running example: the Figure 1
// superblock, its Figure 4 scheduling graph, and the Section 5 search
// that rejects AWCT 9.1 and schedules at 9.4 on the 2-cluster machine.
//
//	go run ./examples/paperexample
package main

import (
	"fmt"
	"log"

	"vcsched/internal/core"
	"vcsched/internal/deduce"
	"vcsched/internal/ir"
	"vcsched/internal/machine"
	"vcsched/internal/sg"
)

func main() {
	sb := ir.PaperFigure1()
	fmt.Println("=== Figure 1: the superblock dependence graph ===")
	fmt.Print(sb)

	fmt.Println("=== Figure 4: the scheduling graph (1 cluster, 2 I + 1 B per cycle) ===")
	g := sg.Build(sb, machine.PaperExampleSG())
	fmt.Print(g)
	fmt.Println()

	m := machine.PaperExampleSection5()
	fmt.Printf("=== Section 5: scheduling on %s ===\n\n", m)

	// The minAWCT enhancement: B1 cannot sit at cycle 6.
	g2 := sg.Build(sb, m)
	_, err := deduce.NewState(sb, m, g2, map[int]int{4: 4, 6: 6}, deduce.Options{PinExits: true})
	fmt.Printf("deadline vector B0=4, B1=6 (traditional minAWCT 8.4): %v\n", err)

	// AWCT 9.1 passes initial propagation but shaving finds the paper's
	// P-PLC contradiction on I4.
	st, err := deduce.NewState(sb, m, g2, map[int]int{4: 4, 6: 7}, deduce.Options{PinExits: true})
	if err != nil {
		log.Fatalf("unexpected: %v", err)
	}
	fmt.Printf("deadline vector B0=4, B1=7 (AWCT 9.1): initial propagation ok;\n")
	fmt.Printf("  I0,I3,B0 share a virtual cluster: %v\n", st.VC().SameVC(0, 3) && st.VC().SameVC(3, 4))
	fmt.Printf("  deeper deduction: %v\n\n", st.Shave(4))

	// The full algorithm lands on 9.4, as the paper derives.
	s, stats, err := core.Schedule(sb, m, core.Options{
		Trace: func(f string, a ...any) { fmt.Printf("  "+f+"\n", a...) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal schedule (minAWCT %.1f, found at AWCT %.1f):\n%s", stats.MinAWCT, s.AWCT(), s.Format())
}
