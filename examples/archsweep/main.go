// Archsweep explores the machine-design space the paper's technique
// targets: it schedules one workload across cluster counts and bus
// latencies (including a heterogeneous configuration, the paper's §2.1
// extension) and prints how the achievable AWCT moves.
//
//	go run ./examples/archsweep
package main

import (
	"fmt"
	"log"
	"time"

	"vcsched/internal/cars"
	"vcsched/internal/core"
	"vcsched/internal/ir"
	"vcsched/internal/machine"
	"vcsched/internal/regpressure"
	"vcsched/internal/workload"
)

func main() {
	p, err := workload.BenchmarkByName("epicenc")
	if err != nil {
		log.Fatal(err)
	}
	blocks := p.Generate(0.1, 0).Blocks

	var fu [ir.NumClasses]int
	fu[ir.Int], fu[ir.FP], fu[ir.Mem], fu[ir.Branch] = 1, 1, 1, 1

	configs := []*machine.Config{
		{Name: "1 cluster", Clusters: 1, FU: fu},
		{Name: "2 clusters, 1-cycle bus", Clusters: 2, FU: fu, Buses: 1, BusLatency: 1, BusPipelined: true},
		{Name: "2 clusters, 2-cycle bus", Clusters: 2, FU: fu, Buses: 1, BusLatency: 2},
		{Name: "4 clusters, 1-cycle bus", Clusters: 4, FU: fu, Buses: 1, BusLatency: 1, BusPipelined: true},
		{Name: "4 clusters, 2 buses", Clusters: 4, FU: fu, Buses: 2, BusLatency: 1, BusPipelined: true},
	}
	// Heterogeneous: a fat cluster 0 (two int units) beside a thin one.
	het := &machine.Config{Name: "heterogeneous 2 clusters", Clusters: 2, FU: fu, Buses: 1, BusLatency: 1, BusPipelined: true}
	var fat [ir.NumClasses]int
	fat[ir.Int], fat[ir.FP], fat[ir.Mem], fat[ir.Branch] = 2, 1, 1, 1
	het.SetClusterFU(0, fat)
	configs = append(configs, het)

	fmt.Printf("workload: %s, %d superblocks\n\n", p.Name, len(blocks))
	fmt.Printf("%-26s %12s %12s %8s %9s\n", "machine", "Σ AWCT", "per block", "comms", "peak live")
	for _, m := range configs {
		if err := m.Validate(); err != nil {
			log.Fatal(err)
		}
		var sum float64
		comms, peak := 0, 0
		for _, sb := range blocks {
			pins := workload.PinsFor(sb, m.Clusters, 1)
			s, _, err := core.Schedule(sb, m, core.Options{Pins: pins, Timeout: 3 * time.Second})
			if err != nil {
				// The harness policy: fall back to the list scheduler
				// when the search does not finish in time.
				s, err = cars.Schedule(sb, m, pins)
				if err != nil {
					log.Fatalf("%s on %s: %v", sb.Name, m.Name, err)
				}
			}
			sum += s.AWCT()
			comms += s.NumComms()
			rep, err := regpressure.Analyze(s, 64)
			if err != nil {
				log.Fatal(err)
			}
			if rep.PeakLive() > peak {
				peak = rep.PeakLive()
			}
		}
		fmt.Printf("%-26s %12.2f %12.3f %8d %9d\n", m.Name, sum, sum/float64(len(blocks)), comms, peak)
	}
}
