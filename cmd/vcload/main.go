// Command vcload is the load generator for the vcschedd daemon: it
// replays a corpus of .sb files (and/or generated superblocks) against
// POST /v1/schedule at a target request rate, re-submitting a
// configurable fraction of duplicates to exercise the result cache and
// singleflight coalescing, and reports latency percentiles, cache hit
// rate, shed rate and the error-taxonomy histogram.
//
//	go run ./cmd/vcload -addr 127.0.0.1:8457 \
//	    -corpus internal/difftest/testdata/repros -gen 20 -n 200 -dup 0.5
//
// Delivery goes through internal/vcclient: each request gets a per-try
// timeout (-try-timeout), failed or shed tries are retried up to
// -retries times with deterministic decorrelated-jitter backoff that
// honors the daemon's Retry-After hint, and -hedge-after launches a
// hedged duplicate of a slow request (safe: /v1/schedule is
// idempotent). vcload exits non-zero when any request hard-failed (or
// could not be delivered), so harnesses can use it as a pass/fail
// smoke check.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"vcsched/internal/difftest"
	"vcsched/internal/loadsim"
	"vcsched/internal/service"
	"vcsched/internal/stats"
	"vcsched/internal/vcclient"
	"vcsched/internal/version"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8457", "vcschedd address (host:port)")
	corpus := flag.String("corpus", "", "directory of .sb files to replay (each file is one source)")
	gen := flag.Int("gen", 0, "additionally generate this many superblocks (difftest generator)")
	genSeed := flag.Int64("gen-seed", 7, "generator seed")
	maxInstrs := flag.Int("maxinstrs", 24, "generator size cap")
	machineKey := flag.String("machine", "", "machine key to request (\"\" = daemon default)")
	pinSeed := flag.Int64("seed", 0, "pin seed to request (0 = daemon default)")
	steps := flag.Int("steps", 0, "deduction step budget to request (0 = daemon default)")
	n := flag.Int("n", 100, "total requests to send")
	batch := flag.Int("batch", 1, "blocks per request (multi-block requests exercise batch accounting)")
	rps := flag.Float64("rps", 0, "target request rate; 0 means unpaced — send as fast as the -c workers go (negative rejected)")
	dup := flag.Float64("dup", 0.5, "fraction of requests that re-submit an earlier source")
	deadline := flag.Duration("deadline", 0, "per-request deadline to ask for (0 = daemon default)")
	conc := flag.Int("c", 4, "in-flight request concurrency")
	retries := flag.Int("retries", 2, "re-attempts after a failed or shed try (0 = none, negative rejected)")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge a try that has not answered within this duration (0 = off, negative rejected)")
	tryTimeout := flag.Duration("try-timeout", 2*time.Minute, "per-try timeout (0 = client default, negative rejected)")
	verbose := flag.Bool("v", false, "log every response")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("vcload", version.String())
		return
	}

	sources, err := loadSources(*corpus, *gen, *genSeed, *maxInstrs)
	if err != nil {
		fatal(err)
	}
	if len(sources) == 0 {
		fatal(fmt.Errorf("no load: give -corpus and/or -gen"))
	}
	if *n < 1 {
		fatal(fmt.Errorf("-n must be at least 1"))
	}
	pace, err := loadsim.PacingInterval(*rps)
	if err != nil {
		fatal(fmt.Errorf("-rps: %w", err))
	}
	if *conc < 1 {
		*conc = 1
	}
	if *batch < 1 {
		*batch = 1
	}

	base := "http://" + *addr
	client, err := vcclient.New(vcclient.Config{
		BaseURL:    base,
		TryTimeout: *tryTimeout,
		Retries:    *retries,
		HedgeAfter: *hedgeAfter,
		Seed:       *genSeed,
	})
	if err != nil {
		fatal(err)
	}
	if err := waitHealthy(base, 10*time.Second); err != nil {
		fatal(err)
	}

	// The dispatcher picks each request's source up front (so the
	// duplicate pattern is deterministic for a given seed) and paces to
	// the target rate; -c workers deliver.
	rng := rand.New(rand.NewSource(*genSeed))
	jobs := make(chan []string)
	go func() {
		defer close(jobs)
		var tick *time.Ticker
		if pace > 0 {
			tick = time.NewTicker(pace)
			defer tick.Stop()
		}
		picks := 0
		for i := 0; i < *n; i++ {
			blocks := make([]string, *batch)
			for b := range blocks {
				if picks > 0 && rng.Float64() < *dup {
					blocks[b] = sources[rng.Intn(min(picks, len(sources)))]
				} else {
					blocks[b] = sources[picks%len(sources)]
				}
				picks++
			}
			if tick != nil {
				<-tick.C
			}
			jobs <- blocks
		}
	}()

	var (
		mu        sync.Mutex
		latencies []time.Duration
		agg       tally
	)
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for blocks := range jobs {
				start := time.Now()
				resp, err := client.Schedule(service.WireRequest{
					Blocks:    blocks,
					Machine:   *machineKey,
					PinSeed:   *pinSeed,
					MaxSteps:  *steps,
					TimeoutMS: deadlineMS(*deadline),
				})
				lat := time.Since(start)
				mu.Lock()
				latencies = append(latencies, lat)
				agg.add(len(blocks), resp, err, *verbose, lat)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	report(os.Stdout, latencies, &agg, client.Stats())
	if agg.transport > 0 || agg.hardFailures > 0 {
		fmt.Fprintf(os.Stderr, "vcload: %d hard failures, %d transport errors (taxonomy: %s)\n",
			agg.hardFailures, agg.transport, strings.Join(agg.taxonomyNames(), ", "))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcload:", err)
	os.Exit(1)
}

// loadSources collects the request pool: every *.sb file under dir
// (sorted, so runs are reproducible) plus gen generated blocks.
func loadSources(dir string, gen int, seed int64, maxInstrs int) ([]string, error) {
	var sources []string
	if dir != "" {
		paths, err := filepath.Glob(filepath.Join(dir, "*.sb"))
		if err != nil {
			return nil, err
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("no .sb files in %s", dir)
		}
		sort.Strings(paths)
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				return nil, err
			}
			sources = append(sources, string(b))
		}
	}
	g := difftest.NewGen(seed, maxInstrs)
	for i := 0; i < gen; i++ {
		sources = append(sources, g.Next().String())
	}
	return sources, nil
}

// waitHealthy polls /v1/healthz so vcload can be started alongside the
// daemon without an external readiness dance.
func waitHealthy(base string, within time.Duration) error {
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(within)
	for {
		resp, err := client.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err == nil {
				return fmt.Errorf("daemon at %s not healthy within %v", base, within)
			}
			return fmt.Errorf("daemon at %s not reachable within %v: %w", base, within, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func deadlineMS(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	return int64(d / time.Millisecond)
}

// tally accumulates counters in two units. Per-request: requests,
// transport. Per-block: everything else — a batch request carries many
// blocks, each with its own verdict, and a transport-failed request
// loses every block it carried (transportBlocks), not one.
type tally struct {
	requests        int
	blocksSent      int // blocks attempted, including ones lost to transport errors
	blocks          int // blocks that came back with a per-block verdict
	ok              int
	cacheHits       int
	coalesced       int
	shed            int
	hardFailures    int
	transport       int // failed requests
	transportBlocks int // blocks those failed requests carried
	taxonomy        map[string]int
}

func (t *tally) add(sent int, resp *service.WireResponse, err error, verbose bool, lat time.Duration) {
	t.requests++
	t.blocksSent += sent
	if err != nil {
		t.transport++
		t.transportBlocks += sent
		fmt.Fprintln(os.Stderr, "vcload:", err)
		return
	}
	for _, r := range resp.Results {
		t.blocks++
		if t.taxonomy == nil {
			t.taxonomy = map[string]int{}
		}
		t.taxonomy[r.Taxonomy]++
		switch {
		case r.HardFailure:
			t.hardFailures++
		case r.Shed:
			t.shed++
		case r.Error == "":
			t.ok++
		}
		if r.CacheHit {
			t.cacheHits++
		}
		if r.Coalesced {
			t.coalesced++
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "%-24s %8.2fms tier=%-8s taxonomy=%-12s hit=%t coalesced=%t shed=%t\n",
				r.Block, float64(lat)/float64(time.Millisecond), r.Tier, r.Taxonomy, r.CacheHit, r.Coalesced, r.Shed)
		}
	}
}

func (t *tally) taxonomyNames() []string {
	var names []string
	for name, n := range t.taxonomy {
		if n > 0 && name != "ok" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		names = append(names, "none")
	}
	return names
}

func report(w io.Writer, latencies []time.Duration, t *tally, cs vcclient.Stats) {
	sorted := stats.Sort(latencies)
	pct := func(p float64) time.Duration { return stats.Percentile(sorted, p) }
	// Per-block rates divide by blocks *sent*: a transport-failed batch
	// request loses every block it carried, and dividing by only the
	// blocks that came back would overstate ok/shed rates under failures.
	rate := func(n int) float64 {
		if t.blocksSent == 0 {
			return 0
		}
		return 100 * float64(n) / float64(t.blocksSent)
	}
	fmt.Fprintf(w, "vcload %s: %d requests, %d/%d blocks answered\n", version.String(), t.requests, t.blocks, t.blocksSent)
	fmt.Fprintf(w, "  ok %d (%.1f%%)  hard-failures %d  shed %d (%.1f%%)  transport-errors %d (%d blocks lost, %.1f%%)\n",
		t.ok, rate(t.ok), t.hardFailures, t.shed, rate(t.shed), t.transport, t.transportBlocks, rate(t.transportBlocks))
	fmt.Fprintf(w, "  cache-hits %d (%.1f%%)  coalesced %d (%.1f%%)\n",
		t.cacheHits, rate(t.cacheHits), t.coalesced, rate(t.coalesced))
	fmt.Fprintf(w, "  latency p50 %v  p90 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	fmt.Fprintf(w, "  client tries %d  retries %d  hedges %d  sheds-seen %d\n",
		cs.Tries, cs.Retries, cs.Hedges, cs.Sheds)
	var names []string
	for name := range t.taxonomy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  taxonomy %-14s %d\n", name, t.taxonomy[name])
	}
}
