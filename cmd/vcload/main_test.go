package main

import (
	"io"
	"strings"
	"testing"
	"time"

	"vcsched/internal/service"
	"vcsched/internal/vcclient"
)

// seq returns [1ms, 2ms, ..., n ms], already sorted.
func seq(n int) []time.Duration {
	s := make([]time.Duration, n)
	for i := range s {
		s[i] = time.Duration(i+1) * time.Millisecond
	}
	return s
}

func TestTallyBatchUnits(t *testing.T) {
	var agg tally
	// One 4-block batch: 2 ok (one a cache hit), 1 shed, 1 hard failure.
	agg.add(4, &service.WireResponse{Results: []service.WireResult{
		{Taxonomy: "ok", CacheHit: true},
		{Taxonomy: "ok"},
		{Taxonomy: "shed", Shed: true},
		{Taxonomy: "contradiction", HardFailure: true},
	}}, nil, false, time.Millisecond)
	// One 4-block batch lost entirely to a transport error.
	agg.add(4, nil, io.ErrUnexpectedEOF, false, time.Millisecond)

	if agg.requests != 2 || agg.blocksSent != 8 || agg.blocks != 4 {
		t.Fatalf("requests=%d blocksSent=%d blocks=%d, want 2/8/4", agg.requests, agg.blocksSent, agg.blocks)
	}
	if agg.ok != 2 || agg.shed != 1 || agg.hardFailures != 1 || agg.cacheHits != 1 {
		t.Fatalf("ok=%d shed=%d hard=%d hits=%d, want 2/1/1/1", agg.ok, agg.shed, agg.hardFailures, agg.cacheHits)
	}
	if agg.transport != 1 || agg.transportBlocks != 4 {
		t.Fatalf("transport=%d transportBlocks=%d, want 1/4", agg.transport, agg.transportBlocks)
	}

	var b strings.Builder
	report(&b, seq(8), &agg, vcclient.Stats{Tries: 3, Retries: 1, Hedges: 0, Sheds: 1})
	out := b.String()
	// 8 blocks sent is the denominator everywhere: ok 2/8 = 25%, shed
	// 1/8 = 12.5%, transport loss 4/8 = 50%. The old per-returned-block
	// denominator (4) would have doubled every rate.
	for _, want := range []string{
		"2 requests, 4/8 blocks answered",
		"ok 2 (25.0%)",
		"shed 1 (12.5%)",
		"transport-errors 1 (4 blocks lost, 50.0%)",
		"cache-hits 1 (12.5%)",
		"latency p50 4ms  p90 8ms  p99 8ms  max 8ms",
		"client tries 3  retries 1  hedges 0  sheds-seen 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
