// Command vcfuzz runs the differential fuzzing harness of
// internal/difftest: it generates random superblocks, schedules each
// with the virtual-cluster scheduler, and cross-checks the result
// against the static validator, the lockstep simulator, the exhaustive
// oracle and the parallel portfolio driver, plus metamorphic invariants.
// Violations are shrunk to minimal reproducers and written as
// self-contained .sb files.
//
//	go run ./cmd/vcfuzz -budget 2000 -seed 1 -out results/repros
//
// Replaying a reproducer re-runs the exact recorded check:
//
//	go run ./cmd/vcfuzz -replay results/repros/repro_0012_validate.sb
//
// The exit status is 0 for a clean run (or a replay with no violations)
// and 1 when violations were found, so the command composes with CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vcsched/internal/difftest"
	"vcsched/internal/machine"
	"vcsched/internal/version"
)

func main() {
	budget := flag.Int("budget", 500, "number of random superblocks to check")
	seed := flag.Int64("seed", 1, "generator seed (same seed, same corpus)")
	machines := flag.String("machines", "2c1l,4c1l,4c2l", "comma-separated machine keys to cycle through")
	maxInstrs := flag.Int("maxinstrs", 0, "largest generated block (0 = default 40)")
	steps := flag.Int("steps", 0, "deduction step budget per scheduling attempt (0 = default 20000)")
	parallel := flag.Int("parallel", 0, "portfolio width for the serial-vs-parallel check (0 = default 4, <0 disables)")
	oracleLim := flag.Int("oracle", 0, "largest block cross-checked against the exhaustive oracle (0 = default 8, <0 disables)")
	pinSeed := flag.Int64("pinseed", 0, "live-in/live-out pin seed")
	nogoodChk := flag.Bool("nogood", false, "also cross-check conflict learning (learn on/off identity + nogood replay)")
	out := flag.String("out", "results/repros", "directory for shrunken reproducer .sb files (empty = don't write)")
	maxViol := flag.Int("maxviolations", 0, "stop after this many violating blocks (0 = run the full budget)")
	replay := flag.String("replay", "", "replay one reproducer file instead of fuzzing")
	verbose := flag.Bool("v", false, "log every violation and progress line")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("vcfuzz", version.String())
		return
	}

	if *replay != "" {
		os.Exit(replayFile(*replay))
	}

	var ms []*machine.Config
	for _, key := range strings.Split(*machines, ",") {
		m, err := machine.ByKey(strings.TrimSpace(key))
		if err != nil {
			fatal(err)
		}
		ms = append(ms, m)
	}

	logf := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	if !*verbose {
		logf = nil
	}
	start := time.Now()
	outcome, err := difftest.Fuzz(difftest.Config{
		Seed:          *seed,
		Budget:        *budget,
		Machines:      ms,
		MaxInstrs:     *maxInstrs,
		PinSeed:       *pinSeed,
		MaxSteps:      *steps,
		Parallelism:   *parallel,
		Nogood:        *nogoodChk,
		OracleLimit:   *oracleLim,
		ReproDir:      *out,
		MaxViolations: *maxViol,
		Log:           logf,
	})
	if err != nil {
		fatal(err)
	}
	el := time.Since(start).Round(time.Millisecond)
	fmt.Printf("vcfuzz: %d blocks checked in %v (%d scheduled, %d exhausted): %d violations\n",
		outcome.Checked, el, outcome.Scheduled, outcome.Exhausted, len(outcome.Violating))
	for i, rep := range outcome.Violating {
		fmt.Printf("  violation %d: %s (%d instructions after shrinking)\n",
			i+1, rep.SB.Name, rep.SB.N())
		for _, v := range rep.Violations {
			fmt.Printf("    %s\n", firstLine(v.String()))
		}
		if i < len(outcome.ReproFiles) {
			fmt.Printf("    repro: %s\n", outcome.ReproFiles[i])
		}
	}
	if len(outcome.Violating) > 0 {
		os.Exit(1)
	}
}

func replayFile(path string) int {
	r, err := difftest.ReadReproFile(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replaying %s: %s on %s (pinseed %d, steps %d, parallel %d, oracle %d)\n",
		path, r.SB.Name, r.MachineKey, r.PinSeed, r.MaxSteps, r.Parallelism, r.OracleLimit)
	for _, v := range r.Violations {
		fmt.Printf("  recorded: %s\n", v)
	}
	rep, err := r.Replay()
	if err != nil {
		fatal(err)
	}
	if len(rep.Violations) == 0 {
		fmt.Println("replay clean: no violations")
		return 0
	}
	for _, v := range rep.Violations {
		fmt.Printf("  reproduced: %s\n", firstLine(v.String()))
	}
	return 1
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcfuzz:", err)
	os.Exit(1)
}
