// Command benchgate compares a freshly recorded benchmark document
// (benchjson output, e.g. BENCH_deduce.json) against a checked-in
// baseline (BENCH_baseline.json) and exits non-zero when any benchmark
// regressed beyond its tolerance band.
//
// The two metrics have very different noise profiles, so they get
// separate bands:
//
//   - allocs/op is deterministic for this codebase (the allocation
//     count of a fixed workload does not depend on machine load), so
//     the default band is tight. A regression here means code started
//     allocating on the hot path again — exactly what the arena/bitset
//     state exists to prevent.
//   - ns/op on shared CI runners is noisy, so its default band is wide;
//     it only catches order-of-magnitude cliffs, not percent-level
//     drift. Tighten it locally via -ns-tol for real measurements.
//
// A benchmark present in the baseline but missing from the current
// document fails the gate (lost coverage); one present only in the
// current document passes with a note (update the baseline to start
// gating it).
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_deduce.json
//
// With -service the gate switches to service-level objectives: it
// compares a BENCH_service.json recorded by cmd/vcslo against the
// checked-in BENCH_service_baseline.json, scenario by scenario:
//
//   - p99 latency may exceed the baseline by at most -p99-tol
//     (fractional) plus -p99-slack-ms (absolute grace for
//     sub-millisecond baselines);
//
//   - the cache hit rate may drop below the baseline by at most
//     -hit-tol (absolute rate points);
//
//   - the shed rate may deviate from the baseline in either direction
//     by at most -shed-tol — shedding more means capacity regressed,
//     shedding less than an overload baseline means admission control
//     stopped refusing work it must refuse;
//
//   - the hard-failure count must be zero, baseline or not. There is
//     no tolerance band for a scheduler that breaks requests. Chaos
//     scenarios report deliberately injected failures separately
//     (injected/poisoned), so this stays an escaped-failure gate;
//
//   - watchdog leaks and warm/cold identity violations must likewise
//     be zero, baseline or not — a watchdog-killed execution still
//     running at drain or a warm result that differs from its cold
//     bytes is broken regardless of tolerance.
//
//     benchgate -service -baseline BENCH_service_baseline.json -current BENCH_service.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vcsched/internal/loadsim"
	"vcsched/internal/version"
)

// benchDoc mirrors benchjson's output document.
type benchDoc struct {
	Version    string  `json:"version"`
	Benchmarks []bench `json:"benchmarks"`
}

type bench struct {
	Name     string  `json:"name"`
	Runs     int     `json:"runs"`
	N        int64   `json:"n"`
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

func main() {
	service := flag.Bool("service", false, "gate service-level SLOs (vcslo documents) instead of microbenchmarks")
	baselinePath := flag.String("baseline", "", "checked-in baseline document (default BENCH_baseline.json; BENCH_service_baseline.json with -service)")
	currentPath := flag.String("current", "", "freshly recorded document (default BENCH_deduce.json; BENCH_service.json with -service)")
	allocsTol := flag.Float64("allocs-tol", 0.10, "allowed fractional allocs/op increase over baseline")
	nsTol := flag.Float64("ns-tol", 1.50, "allowed fractional ns/op increase over baseline")
	p99Tol := flag.Float64("p99-tol", 0.50, "allowed fractional p99 latency increase over baseline (-service)")
	p99SlackMS := flag.Float64("p99-slack-ms", 2.0, "absolute p99 grace in ms on top of the band (-service)")
	hitTol := flag.Float64("hit-tol", 0.05, "allowed absolute cache-hit-rate drop below baseline (-service)")
	shedTol := flag.Float64("shed-tol", 0.05, "allowed absolute shed-rate deviation from baseline, either direction (-service)")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("benchgate", version.String())
		return
	}
	if *baselinePath == "" {
		if *service {
			*baselinePath = "BENCH_service_baseline.json"
		} else {
			*baselinePath = "BENCH_baseline.json"
		}
	}
	if *currentPath == "" {
		if *service {
			*currentPath = "BENCH_service.json"
		} else {
			*currentPath = "BENCH_deduce.json"
		}
	}

	var violations, notes []string
	var gated int
	if *service {
		baseline, err := readServiceDoc(*baselinePath)
		if err != nil {
			fatal(err)
		}
		current, err := readServiceDoc(*currentPath)
		if err != nil {
			fatal(err)
		}
		violations, notes = gateService(baseline, current, sloTolerances{
			p99Tol: *p99Tol, p99SlackMS: *p99SlackMS, hitTol: *hitTol, shedTol: *shedTol,
		})
		gated = len(baseline.Scenarios)
	} else {
		baseline, err := readDoc(*baselinePath)
		if err != nil {
			fatal(err)
		}
		current, err := readDoc(*currentPath)
		if err != nil {
			fatal(err)
		}
		violations, notes = gate(baseline, current, *allocsTol, *nsTol)
		gated = len(baseline.Benchmarks)
	}
	for _, n := range notes {
		fmt.Println("benchgate:", n)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", v)
		}
		os.Exit(1)
	}
	if *service {
		fmt.Printf("benchgate: %d scenarios within tolerance (p99 +%.0f%%+%.1fms, hit -%.0fpp, shed ±%.0fpp, hard failures 0)\n",
			gated, 100**p99Tol, *p99SlackMS, 100**hitTol, 100**shedTol)
	} else {
		fmt.Printf("benchgate: %d benchmarks within tolerance (allocs +%.0f%%, ns +%.0f%%)\n",
			gated, 100**allocsTol, 100**nsTol)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}

func readDoc(path string) (*benchDoc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &doc, nil
}

// gate compares every baseline benchmark against the current document
// and returns the tolerance violations plus informational notes.
func gate(baseline, current *benchDoc, allocsTol, nsTol float64) (violations, notes []string) {
	cur := make(map[string]bench, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	seen := make(map[string]bool, len(baseline.Benchmarks))
	for _, base := range baseline.Benchmarks {
		seen[base.Name] = true
		got, ok := cur[base.Name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline but not in current run (lost coverage)", base.Name))
			continue
		}
		if base.AllocsOp >= 0 && got.AllocsOp >= 0 {
			if limit := base.AllocsOp * (1 + allocsTol); got.AllocsOp > limit {
				violations = append(violations,
					fmt.Sprintf("%s: allocs/op %.1f exceeds baseline %.1f by more than %.0f%% (limit %.1f)",
						base.Name, got.AllocsOp, base.AllocsOp, 100*allocsTol, limit))
			}
		}
		if limit := base.NsOp * (1 + nsTol); got.NsOp > limit {
			violations = append(violations,
				fmt.Sprintf("%s: ns/op %.1f exceeds baseline %.1f by more than %.0f%% (limit %.1f)",
					base.Name, got.NsOp, base.NsOp, 100*nsTol, limit))
		}
	}
	for _, b := range current.Benchmarks {
		if !seen[b.Name] {
			notes = append(notes,
				fmt.Sprintf("%s: not in baseline, not gated (add it to BENCH_baseline.json)", b.Name))
		}
	}
	return violations, notes
}

// sloTolerances bundles the -service bands.
type sloTolerances struct {
	p99Tol     float64 // fractional p99 increase
	p99SlackMS float64 // absolute p99 grace
	hitTol     float64 // absolute hit-rate drop
	shedTol    float64 // absolute shed-rate deviation, either direction
}

func readServiceDoc(path string) (*loadsim.Document, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc loadsim.Document
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Scenarios) == 0 {
		return nil, fmt.Errorf("%s: no scenarios", path)
	}
	return &doc, nil
}

// gateService compares every baseline scenario's SLOs against the
// current document. Hard failures are gated unconditionally — even in
// scenarios the baseline does not know yet.
func gateService(baseline, current *loadsim.Document, tol sloTolerances) (violations, notes []string) {
	cur := make(map[string]loadsim.Report, len(current.Scenarios))
	for _, r := range current.Scenarios {
		cur[r.Scenario] = r
	}
	seen := make(map[string]bool, len(baseline.Scenarios))
	for _, base := range baseline.Scenarios {
		seen[base.Scenario] = true
		got, ok := cur[base.Scenario]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline but not in current run (lost coverage)", base.Scenario))
			continue
		}
		violations = append(violations, unconditionalSLOs(got)...)
		if limit := base.P99MS*(1+tol.p99Tol) + tol.p99SlackMS; got.P99MS > limit {
			violations = append(violations,
				fmt.Sprintf("%s: p99 %.3fms exceeds baseline %.3fms by more than %.0f%%+%.1fms (limit %.3fms)",
					base.Scenario, got.P99MS, base.P99MS, 100*tol.p99Tol, tol.p99SlackMS, limit))
		}
		if floor := base.HitRate - tol.hitTol; got.HitRate < floor {
			violations = append(violations,
				fmt.Sprintf("%s: hit rate %.1f%% below baseline %.1f%% by more than %.0fpp (floor %.1f%%)",
					base.Scenario, 100*got.HitRate, 100*base.HitRate, 100*tol.hitTol, 100*floor))
		}
		if dev := got.ShedRate - base.ShedRate; dev > tol.shedTol || dev < -tol.shedTol {
			violations = append(violations,
				fmt.Sprintf("%s: shed rate %.1f%% deviates from baseline %.1f%% by more than %.0fpp",
					base.Scenario, 100*got.ShedRate, 100*base.ShedRate, 100*tol.shedTol))
		}
	}
	for _, r := range current.Scenarios {
		if seen[r.Scenario] {
			continue
		}
		violations = append(violations, unconditionalSLOs(r)...)
		notes = append(notes,
			fmt.Sprintf("%s: not in baseline, SLOs not gated (add it to BENCH_service_baseline.json)", r.Scenario))
	}
	return violations, notes
}

// unconditionalSLOs are the invariants with no tolerance band and no
// baseline requirement: a scheduler that breaks requests
// (hard_failures counts only failures the chaos layer did NOT inject),
// leaks a watchdog-killed execution, or serves a warm result that is
// not byte-identical to the cold one is broken regardless of what any
// baseline says.
func unconditionalSLOs(r loadsim.Report) []string {
	var v []string
	if r.HardFailures > 0 {
		v = append(v, fmt.Sprintf("%s: %d escaped hard failures (must be zero)", r.Scenario, r.HardFailures))
	}
	if r.WatchdogLeaks > 0 {
		v = append(v, fmt.Sprintf("%s: %d watchdog-killed executions still running at drain (must be zero)", r.Scenario, r.WatchdogLeaks))
	}
	if r.IdentityViolations > 0 {
		v = append(v, fmt.Sprintf("%s: %d warm results not byte-identical to cold (must be zero)", r.Scenario, r.IdentityViolations))
	}
	return v
}
