// Command benchgate compares a freshly recorded benchmark document
// (benchjson output, e.g. BENCH_deduce.json) against a checked-in
// baseline (BENCH_baseline.json) and exits non-zero when any benchmark
// regressed beyond its tolerance band.
//
// The two metrics have very different noise profiles, so they get
// separate bands:
//
//   - allocs/op is deterministic for this codebase (the allocation
//     count of a fixed workload does not depend on machine load), so
//     the default band is tight. A regression here means code started
//     allocating on the hot path again — exactly what the arena/bitset
//     state exists to prevent.
//   - ns/op on shared CI runners is noisy, so its default band is wide;
//     it only catches order-of-magnitude cliffs, not percent-level
//     drift. Tighten it locally via -ns-tol for real measurements.
//
// A benchmark present in the baseline but missing from the current
// document fails the gate (lost coverage); one present only in the
// current document passes with a note (update the baseline to start
// gating it).
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_deduce.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vcsched/internal/version"
)

// benchDoc mirrors benchjson's output document.
type benchDoc struct {
	Version    string  `json:"version"`
	Benchmarks []bench `json:"benchmarks"`
}

type bench struct {
	Name     string  `json:"name"`
	Runs     int     `json:"runs"`
	N        int64   `json:"n"`
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "checked-in baseline document")
	currentPath := flag.String("current", "BENCH_deduce.json", "freshly recorded document")
	allocsTol := flag.Float64("allocs-tol", 0.10, "allowed fractional allocs/op increase over baseline")
	nsTol := flag.Float64("ns-tol", 1.50, "allowed fractional ns/op increase over baseline")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("benchgate", version.String())
		return
	}

	baseline, err := readDoc(*baselinePath)
	if err != nil {
		fatal(err)
	}
	current, err := readDoc(*currentPath)
	if err != nil {
		fatal(err)
	}

	violations, notes := gate(baseline, current, *allocsTol, *nsTol)
	for _, n := range notes {
		fmt.Println("benchgate:", n)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", v)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within tolerance (allocs +%.0f%%, ns +%.0f%%)\n",
		len(baseline.Benchmarks), 100**allocsTol, 100**nsTol)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}

func readDoc(path string) (*benchDoc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &doc, nil
}

// gate compares every baseline benchmark against the current document
// and returns the tolerance violations plus informational notes.
func gate(baseline, current *benchDoc, allocsTol, nsTol float64) (violations, notes []string) {
	cur := make(map[string]bench, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	seen := make(map[string]bool, len(baseline.Benchmarks))
	for _, base := range baseline.Benchmarks {
		seen[base.Name] = true
		got, ok := cur[base.Name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline but not in current run (lost coverage)", base.Name))
			continue
		}
		if base.AllocsOp >= 0 && got.AllocsOp >= 0 {
			if limit := base.AllocsOp * (1 + allocsTol); got.AllocsOp > limit {
				violations = append(violations,
					fmt.Sprintf("%s: allocs/op %.1f exceeds baseline %.1f by more than %.0f%% (limit %.1f)",
						base.Name, got.AllocsOp, base.AllocsOp, 100*allocsTol, limit))
			}
		}
		if limit := base.NsOp * (1 + nsTol); got.NsOp > limit {
			violations = append(violations,
				fmt.Sprintf("%s: ns/op %.1f exceeds baseline %.1f by more than %.0f%% (limit %.1f)",
					base.Name, got.NsOp, base.NsOp, 100*nsTol, limit))
		}
	}
	for _, b := range current.Benchmarks {
		if !seen[b.Name] {
			notes = append(notes,
				fmt.Sprintf("%s: not in baseline, not gated (add it to BENCH_baseline.json)", b.Name))
		}
	}
	return violations, notes
}
