package main

import (
	"strings"
	"testing"
)

func doc(benches ...bench) *benchDoc { return &benchDoc{Benchmarks: benches} }

func TestGateWithinTolerancePasses(t *testing.T) {
	base := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500})
	cur := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 180000, AllocsOp: 540})
	violations, notes := gate(base, cur, 0.10, 1.50)
	if len(violations) != 0 || len(notes) != 0 {
		t.Fatalf("violations %v notes %v, want none", violations, notes)
	}
}

func TestGateAllocRegressionFails(t *testing.T) {
	base := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500})
	cur := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 551})
	violations, _ := gate(base, cur, 0.10, 1.50)
	if len(violations) != 1 || !strings.Contains(violations[0], "allocs/op") {
		t.Fatalf("violations %v, want one allocs/op violation", violations)
	}
}

func TestGateTimeRegressionFails(t *testing.T) {
	base := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500})
	cur := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 260000, AllocsOp: 500})
	violations, _ := gate(base, cur, 0.10, 1.50)
	if len(violations) != 1 || !strings.Contains(violations[0], "ns/op") {
		t.Fatalf("violations %v, want one ns/op violation", violations)
	}
}

func TestGateMissingBenchmarkFails(t *testing.T) {
	base := doc(
		bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500},
		bench{Name: "BenchmarkShave/130.li", NsOp: 20000, AllocsOp: 100},
	)
	cur := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500})
	violations, _ := gate(base, cur, 0.10, 1.50)
	if len(violations) != 1 || !strings.Contains(violations[0], "lost coverage") {
		t.Fatalf("violations %v, want one lost-coverage violation", violations)
	}
}

func TestGateExtraBenchmarkIsANote(t *testing.T) {
	base := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500})
	cur := doc(
		bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500},
		bench{Name: "BenchmarkNew/one", NsOp: 1, AllocsOp: 1},
	)
	violations, notes := gate(base, cur, 0.10, 1.50)
	if len(violations) != 0 {
		t.Fatalf("violations %v, want none", violations)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "not gated") {
		t.Fatalf("notes %v, want one not-gated note", notes)
	}
}

// Benchmarks recorded without -benchmem carry allocs_op = -1; the gate
// must skip the alloc comparison rather than treat -1 as a bound.
func TestGateSkipsAllocCheckWithoutMemStats(t *testing.T) {
	base := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: -1})
	cur := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500})
	violations, _ := gate(base, cur, 0.10, 1.50)
	if len(violations) != 0 {
		t.Fatalf("violations %v, want none", violations)
	}
}
