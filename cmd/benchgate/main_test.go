package main

import (
	"strings"
	"testing"

	"vcsched/internal/loadsim"
)

func doc(benches ...bench) *benchDoc { return &benchDoc{Benchmarks: benches} }

func TestGateWithinTolerancePasses(t *testing.T) {
	base := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500})
	cur := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 180000, AllocsOp: 540})
	violations, notes := gate(base, cur, 0.10, 1.50)
	if len(violations) != 0 || len(notes) != 0 {
		t.Fatalf("violations %v notes %v, want none", violations, notes)
	}
}

func TestGateAllocRegressionFails(t *testing.T) {
	base := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500})
	cur := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 551})
	violations, _ := gate(base, cur, 0.10, 1.50)
	if len(violations) != 1 || !strings.Contains(violations[0], "allocs/op") {
		t.Fatalf("violations %v, want one allocs/op violation", violations)
	}
}

func TestGateTimeRegressionFails(t *testing.T) {
	base := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500})
	cur := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 260000, AllocsOp: 500})
	violations, _ := gate(base, cur, 0.10, 1.50)
	if len(violations) != 1 || !strings.Contains(violations[0], "ns/op") {
		t.Fatalf("violations %v, want one ns/op violation", violations)
	}
}

func TestGateMissingBenchmarkFails(t *testing.T) {
	base := doc(
		bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500},
		bench{Name: "BenchmarkShave/130.li", NsOp: 20000, AllocsOp: 100},
	)
	cur := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500})
	violations, _ := gate(base, cur, 0.10, 1.50)
	if len(violations) != 1 || !strings.Contains(violations[0], "lost coverage") {
		t.Fatalf("violations %v, want one lost-coverage violation", violations)
	}
}

func TestGateExtraBenchmarkIsANote(t *testing.T) {
	base := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500})
	cur := doc(
		bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500},
		bench{Name: "BenchmarkNew/one", NsOp: 1, AllocsOp: 1},
	)
	violations, notes := gate(base, cur, 0.10, 1.50)
	if len(violations) != 0 {
		t.Fatalf("violations %v, want none", violations)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "not gated") {
		t.Fatalf("notes %v, want one not-gated note", notes)
	}
}

// Benchmarks recorded without -benchmem carry allocs_op = -1; the gate
// must skip the alloc comparison rather than treat -1 as a bound.
func TestGateSkipsAllocCheckWithoutMemStats(t *testing.T) {
	base := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: -1})
	cur := doc(bench{Name: "BenchmarkShave/099.go", NsOp: 100000, AllocsOp: 500})
	violations, _ := gate(base, cur, 0.10, 1.50)
	if len(violations) != 0 {
		t.Fatalf("violations %v, want none", violations)
	}
}

// --- service SLO gate ---

func sdoc(reports ...loadsim.Report) *loadsim.Document {
	return &loadsim.Document{Scenarios: reports}
}

func tols() sloTolerances {
	return sloTolerances{p99Tol: 0.50, p99SlackMS: 2.0, hitTol: 0.05, shedTol: 0.05}
}

func TestGateServiceWithinBandsPasses(t *testing.T) {
	base := sdoc(loadsim.Report{Scenario: "steady", P99MS: 10, HitRate: 0.50, ShedRate: 0})
	cur := sdoc(loadsim.Report{Scenario: "steady", P99MS: 14, HitRate: 0.47, ShedRate: 0.02})
	violations, notes := gateService(base, cur, tols())
	if len(violations) != 0 || len(notes) != 0 {
		t.Fatalf("violations %v notes %v, want none", violations, notes)
	}
}

func TestGateServiceP99RegressionFails(t *testing.T) {
	base := sdoc(loadsim.Report{Scenario: "steady", P99MS: 10, HitRate: 0.50})
	cur := sdoc(loadsim.Report{Scenario: "steady", P99MS: 17.5, HitRate: 0.50})
	violations, _ := gateService(base, cur, tols())
	if len(violations) != 1 || !strings.Contains(violations[0], "p99") {
		t.Fatalf("violations %v, want one p99 violation", violations)
	}
}

func TestGateServiceP99SlackForTinyBaselines(t *testing.T) {
	// A 0ms baseline (all cache hits, virtual clock) must not fail on
	// any nonzero measurement: the absolute slack covers it.
	base := sdoc(loadsim.Report{Scenario: "warm", P99MS: 0, HitRate: 0.9})
	cur := sdoc(loadsim.Report{Scenario: "warm", P99MS: 1.5, HitRate: 0.9})
	if violations, _ := gateService(base, cur, tols()); len(violations) != 0 {
		t.Fatalf("violations %v, want none (within absolute slack)", violations)
	}
}

func TestGateServiceHitRateDropFails(t *testing.T) {
	base := sdoc(loadsim.Report{Scenario: "steady", P99MS: 10, HitRate: 0.50})
	cur := sdoc(loadsim.Report{Scenario: "steady", P99MS: 10, HitRate: 0.40})
	violations, _ := gateService(base, cur, tols())
	if len(violations) != 1 || !strings.Contains(violations[0], "hit rate") {
		t.Fatalf("violations %v, want one hit-rate violation", violations)
	}
	// A hit rate above baseline is an improvement, not a violation.
	better := sdoc(loadsim.Report{Scenario: "steady", P99MS: 10, HitRate: 0.70})
	if violations, _ := gateService(base, better, tols()); len(violations) != 0 {
		t.Fatalf("improved hit rate flagged: %v", violations)
	}
}

func TestGateServiceShedRateDeviatesBothWays(t *testing.T) {
	base := sdoc(loadsim.Report{Scenario: "overload", P99MS: 10, ShedRate: 0.44})
	over := sdoc(loadsim.Report{Scenario: "overload", P99MS: 10, ShedRate: 0.60})
	if violations, _ := gateService(base, over, tols()); len(violations) != 1 || !strings.Contains(violations[0], "shed rate") {
		t.Fatalf("shedding more not flagged: %v", violations)
	}
	// Shedding far less than the overload baseline means admission
	// control stopped refusing work it must refuse.
	under := sdoc(loadsim.Report{Scenario: "overload", P99MS: 10, ShedRate: 0.10})
	if violations, _ := gateService(base, under, tols()); len(violations) != 1 || !strings.Contains(violations[0], "shed rate") {
		t.Fatalf("shedding less not flagged: %v", violations)
	}
}

func TestGateServiceHardFailuresAlwaysFail(t *testing.T) {
	base := sdoc(loadsim.Report{Scenario: "steady", P99MS: 10})
	cur := sdoc(
		loadsim.Report{Scenario: "steady", P99MS: 10, HardFailures: 1},
		loadsim.Report{Scenario: "brand-new", P99MS: 1, HardFailures: 2},
	)
	violations, notes := gateService(base, cur, tols())
	if len(violations) != 2 {
		t.Fatalf("violations %v, want hard-failure violations for both scenarios", violations)
	}
	for _, v := range violations {
		if !strings.Contains(v, "hard failures") {
			t.Fatalf("unexpected violation %q", v)
		}
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "not gated") {
		t.Fatalf("notes %v, want one not-gated note for the new scenario", notes)
	}
}

// TestGateServiceChaosInvariantsAlwaysFail: watchdog leaks and
// warm/cold identity violations, like escaped hard failures, have no
// tolerance band and need no baseline entry.
func TestGateServiceChaosInvariantsAlwaysFail(t *testing.T) {
	base := sdoc(loadsim.Report{Scenario: "chaos-faults", P99MS: 10})
	cur := sdoc(
		loadsim.Report{Scenario: "chaos-faults", P99MS: 10, WatchdogLeaks: 1},
		loadsim.Report{Scenario: "chaos-new", P99MS: 1, IdentityViolations: 3},
	)
	violations, _ := gateService(base, cur, tols())
	if len(violations) != 2 {
		t.Fatalf("violations %v, want one per scenario", violations)
	}
	if !strings.Contains(violations[0], "watchdog") || !strings.Contains(violations[1], "byte-identical") {
		t.Fatalf("violations %v, want watchdog-leak and identity violations", violations)
	}

	// Injected/poisoned counts alone are fine: chaos scenarios are
	// SUPPOSED to absorb injected failures without escaping any.
	clean := sdoc(loadsim.Report{Scenario: "chaos-faults", P99MS: 10, Injected: 20, Poisoned: 7, WatchdogKills: 4})
	if violations, _ := gateService(base, clean, tols()); len(violations) != 0 {
		t.Fatalf("injected-only chaos report flagged: %v", violations)
	}
}

func TestGateServiceMissingScenarioFails(t *testing.T) {
	base := sdoc(
		loadsim.Report{Scenario: "steady", P99MS: 10},
		loadsim.Report{Scenario: "overload", P99MS: 10},
	)
	cur := sdoc(loadsim.Report{Scenario: "steady", P99MS: 10})
	violations, _ := gateService(base, cur, tols())
	if len(violations) != 1 || !strings.Contains(violations[0], "lost coverage") {
		t.Fatalf("violations %v, want one lost-coverage violation", violations)
	}
}
