// Command vcslo replays the checked-in declarative scenario suite
// (scenarios/*.json) through the in-process load harness
// (internal/loadsim) and records the measured service-level objectives
// — latency percentiles, cache hit rate, shed rate, taxonomy histogram
// and hard-failure count — in BENCH_service.json, next to the
// microbenchmark document BENCH_deduce.json.
//
//	go run ./cmd/vcslo -suite scenarios -out BENCH_service.json
//
// cmd/benchgate -service compares the document against the checked-in
// BENCH_service_baseline.json with tolerance bands (make slo /
// slo-short), so a service-level performance regression is a red
// build. vcslo itself exits non-zero when any scenario hard-fails or
// cannot run — a hollow-worker scenario has no excuse for either.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"vcsched/internal/loadsim"
	"vcsched/internal/stats"
	"vcsched/internal/version"
)

func main() {
	suiteDir := flag.String("suite", "scenarios", "directory of scenario *.json files")
	scenario := flag.String("scenario", "", "run a single scenario file instead of the suite")
	out := flag.String("out", "BENCH_service.json", "where to write the SLO document (\"-\" = stdout)")
	runs := flag.Int("runs", 1, "repetitions per scenario; counters sum, latencies pool")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("vcslo", version.String())
		return
	}
	if *runs < 1 {
		fatal(fmt.Errorf("-runs must be at least 1"))
	}

	suite, err := loadSuite(*suiteDir, *scenario)
	if err != nil {
		fatal(err)
	}
	doc, hardFailures, err := runSuite(suite, *runs)
	if err != nil {
		fatal(err)
	}
	for i := range doc.Scenarios {
		doc.Scenarios[i].WriteSummary(os.Stdout)
	}
	fmt.Printf("vcslo %s: %d scenarios, %d runs each, pooled p99 %.3fms\n",
		version.String(), len(doc.Scenarios), *runs, pooledP99(doc))

	if err := writeDoc(*out, doc); err != nil {
		fatal(err)
	}
	if hardFailures > 0 {
		fmt.Fprintf(os.Stderr, "vcslo: %d hard failures across the suite\n", hardFailures)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcslo:", err)
	os.Exit(1)
}

func loadSuite(dir, single string) ([]*loadsim.Scenario, error) {
	if single != "" {
		sc, err := loadsim.LoadScenario(single)
		if err != nil {
			return nil, err
		}
		return []*loadsim.Scenario{sc}, nil
	}
	return loadsim.LoadSuite(dir)
}

// runSuite executes every scenario runs times and merges the
// repetitions into one report per scenario, in suite order.
func runSuite(suite []*loadsim.Scenario, runs int) (*loadsim.Document, int, error) {
	doc := &loadsim.Document{Version: version.String()}
	hardFailures := 0
	for _, sc := range suite {
		reps := make([]*loadsim.Report, 0, runs)
		for r := 0; r < runs; r++ {
			rep, err := loadsim.Run(sc)
			if err != nil {
				return nil, 0, err
			}
			reps = append(reps, rep)
		}
		merged, err := loadsim.Merge(reps)
		if err != nil {
			return nil, 0, err
		}
		hardFailures += merged.HardFailures
		doc.Scenarios = append(doc.Scenarios, *merged)
	}
	return doc, hardFailures, nil
}

// pooledP99 computes the suite-wide p99 over every scenario's raw
// latency sample — one headline number for the whole run.
func pooledP99(doc *loadsim.Document) float64 {
	var all []time.Duration
	for i := range doc.Scenarios {
		all = append(all, doc.Scenarios[i].Latencies...)
	}
	return stats.Millis(stats.Percentile(stats.Sort(all), 0.99))
}

func writeDoc(path string, doc *loadsim.Document) error {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
