package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"vcsched/internal/loadsim"
)

func writeScenario(t *testing.T, dir, file, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, file), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

const tinyScenario = `{
  "name": "tiny",
  "seed": 3,
  "gen": 4,
  "stages": [{"rps": 0, "requests": 12}],
  "dup_rate": 0.5,
  "service": {"workers": 1, "queue_depth": 4, "default_deadline_ms": 60000},
  "hollow": {"cost_min_ms": 1, "cost_max_ms": 4},
  "virtual_clock": true
}`

func TestRunSuiteMergesRunsAndStaysDeterministic(t *testing.T) {
	dir := t.TempDir()
	writeScenario(t, dir, "10_tiny.json", tinyScenario)
	suite, err := loadSuite(dir, "")
	if err != nil {
		t.Fatal(err)
	}

	doc, hard, err := runSuite(suite, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hard != 0 {
		t.Fatalf("hollow suite hard-failed %d times", hard)
	}
	if len(doc.Scenarios) != 1 {
		t.Fatalf("scenarios in doc: %d, want 1", len(doc.Scenarios))
	}
	rep := doc.Scenarios[0]
	if rep.Scenario != "tiny" || rep.Runs != 2 || rep.Requests != 24 {
		t.Fatalf("merged report: %+v", rep)
	}

	// A second invocation of the same virtual-clock suite produces the
	// same SLO fields — the property the baseline gate depends on.
	doc2, _, err := runSuite(suite, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := doc.Scenarios[0], doc2.Scenarios[0]
	if a.P99MS != b.P99MS || a.HitRate != b.HitRate || a.ShedRate != b.ShedRate || a.OK != b.OK {
		t.Fatalf("two suite runs disagree:\nfirst  %+v\nsecond %+v", a, b)
	}
}

func TestLoadSuiteSingleScenarioOverride(t *testing.T) {
	dir := t.TempDir()
	writeScenario(t, dir, "one.json", tinyScenario)
	suite, err := loadSuite("nonexistent-dir", filepath.Join(dir, "one.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 1 || suite[0].Name != "tiny" {
		t.Fatalf("single-scenario override loaded: %+v", suite)
	}
}

func TestWriteDocRoundTrips(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_service.json")
	doc := &loadsim.Document{Version: "test", Scenarios: []loadsim.Report{{Scenario: "s", Runs: 1}}}
	if err := writeDoc(path, doc); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back loadsim.Document
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != "test" || len(back.Scenarios) != 1 || back.Scenarios[0].Scenario != "s" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
