// Command benchjson converts `go test -bench` text output (read from
// stdin) into a small stable JSON document, averaging repeated runs of
// one benchmark (-count=N) so CI can record a single number per
// benchmark. Lines that are not benchmark results pass through
// unparsed; the tool never fails on extra output.
//
//	go test -bench=. -benchmem -count=5 ./internal/deduce | benchjson > BENCH_deduce.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"vcsched/internal/version"
)

// result is one aggregated benchmark.
type result struct {
	Name     string  `json:"name"`
	Runs     int     `json:"runs"`
	N        int64   `json:"n"`         // iterations of the last run
	NsOp     float64 `json:"ns_op"`     // mean over runs
	BOp      float64 `json:"b_op"`      // mean over runs; -1 when not reported
	AllocsOp float64 `json:"allocs_op"` // mean over runs; -1 when not reported
	// Extra holds custom b.ReportMetric units (e.g. nogoods/op), keyed
	// by unit with the "/op" suffix stripped, each a mean over runs.
	Extra map[string]float64 `json:"extra,omitempty"`
}

type acc struct {
	runs            int
	n               int64
	ns, b, allocs   float64
	hasB, hasAllocs bool
	extra           map[string]float64
}

func main() {
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("benchjson", version.String())
		return
	}

	accs := map[string]*acc{}
	var order []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, n, ns, b, allocs, extra, hasMem, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		a := accs[name]
		if a == nil {
			a = &acc{}
			accs[name] = a
			order = append(order, name)
		}
		a.runs++
		a.n = n
		a.ns += ns
		if hasMem {
			a.b += b
			a.allocs += allocs
			a.hasB, a.hasAllocs = true, true
		}
		for unit, v := range extra {
			if a.extra == nil {
				a.extra = map[string]float64{}
			}
			a.extra[unit] += v
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	// The version stamp ties a BENCH_*.json document to the build that
	// produced it (the Makefile stamps it via -ldflags).
	out := struct {
		Version    string   `json:"version"`
		Benchmarks []result `json:"benchmarks"`
	}{Version: version.String()}
	sort.Strings(order)
	for _, name := range order {
		a := accs[name]
		r := result{
			Name: name, Runs: a.runs, N: a.n,
			NsOp: a.ns / float64(a.runs), BOp: -1, AllocsOp: -1,
		}
		if a.hasB {
			r.BOp = a.b / float64(a.runs)
		}
		if a.hasAllocs {
			r.AllocsOp = a.allocs / float64(a.runs)
		}
		if a.extra != nil {
			r.Extra = map[string]float64{}
			for unit, v := range a.extra {
				r.Extra[unit] = v / float64(a.runs)
			}
		}
		out.Benchmarks = append(out.Benchmarks, r)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine handles the testing package's benchmark result format:
//
//	BenchmarkShave/099.go-8   2805   381463 ns/op   101532 B/op   2541 allocs/op
//
// including custom b.ReportMetric units, which the testing package
// prints between ns/op and the -benchmem pair:
//
//	BenchmarkScheduleLearn/on-8   2120   575565 ns/op   9.00 nogoods/op   81811 B/op   2669 allocs/op
//
// Everything after the iteration count is scanned as value/unit pairs;
// unknown "<x>/op" units land in extra keyed without the suffix. The
// trailing -P GOMAXPROCS suffix is stripped so runs on machines of
// different widths aggregate under one name.
func parseLine(line string) (name string, n int64, ns, b, allocs float64, extra map[string]float64, hasMem, ok bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return
	}
	name = f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var err error
	if n, err = strconv.ParseInt(f[1], 10, 64); err != nil {
		return
	}
	hasNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			ns, hasNs = v, true
		case "B/op":
			b = v
			hasMem = true
		case "allocs/op":
			allocs = v
		default:
			if rest, isOp := strings.CutSuffix(unit, "/op"); isOp {
				if extra == nil {
					extra = map[string]float64{}
				}
				extra[rest] = v
			}
		}
	}
	ok = hasNs
	return
}
