// Command vcrouter is the fleet front-end: it shards POST /v1/schedule
// traffic by content fingerprint across N vcschedd backends through a
// consistent-hash ring, so the fleet-wide result cache is a partition
// rather than N copies. Duplicate fingerprints coalesce in the router
// before they reach any shard; draining, unreachable or repeatedly
// failing shards are ejected from the ring (their keys spill to the
// ring successor) and readmitted when they recover.
//
//	go run ./cmd/vcrouter -backends http://127.0.0.1:8457,http://127.0.0.1:8458
//
// The HTTP surface is byte-compatible with a single vcschedd (see
// internal/httpapi): clients point at the router and cannot tell the
// fleet from one daemon. /v1/statsz additionally aggregates per-shard
// snapshots into a fleet view with per-shard routing counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vcsched/internal/httpapi"
	"vcsched/internal/machine"
	"vcsched/internal/router"
	"vcsched/internal/vcclient"
	"vcsched/internal/version"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8460", "listen address (port 0 = pick a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for harnesses)")
	backends := flag.String("backends", "", "comma-separated vcschedd base URLs (required)")
	replicas := flag.Int("replicas", 0, "virtual nodes per backend on the hash ring (0 = default 128)")
	machineKey := flag.String("machine", "2c1l", "default machine for fingerprinting requests that name none (match the shards)")
	seed := flag.Int64("seed", 1, "default pin seed for fingerprinting (match the shards)")
	steps := flag.Int("steps", 20000, "default step budget for fingerprinting (match the shards)")
	deadline := flag.Duration("deadline", 5*time.Second, "default deadline for coalesced followers")
	maxDeadline := flag.Duration("max-deadline", 60*time.Second, "cap on requested deadlines")
	retries := flag.Int("retries", 2, "per-block forward retries after the first try (walks the ring successors)")
	tryTimeout := flag.Duration("try-timeout", 2*time.Minute, "per-forward-attempt timeout")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge a slow forward against the next ring successor after this long (0 = off)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive transport failures that eject a shard from the ring (negative = off)")
	breakerCooloff := flag.Duration("breaker-cooloff", 5*time.Second, "how long an ejected shard sits out before a half-open probe")
	healthInterval := flag.Duration("health-interval", time.Second, "shard /v1/healthz poll period (negative = off)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "how long SIGTERM waits for in-flight work")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("vcrouter", version.String())
		return
	}
	if _, err := machine.ByKey(*machineKey); err != nil {
		fatal(err)
	}
	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	if len(urls) == 0 {
		fatal(fmt.Errorf("-backends is required (comma-separated vcschedd URLs)"))
	}

	rt, err := router.New(router.Config{
		Backends: urls,
		Replicas: *replicas,
		Defaults: httpapi.Defaults{MachineKey: *machineKey, PinSeed: *seed, MaxSteps: *steps},
		Client: vcclient.Config{
			TryTimeout: *tryTimeout,
			Retries:    *retries,
			HedgeAfter: *hedgeAfter,
		},
		BreakerThreshold: *breakerThreshold,
		BreakerCooloff:   *breakerCooloff,
		HealthInterval:   *healthInterval,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "vcrouter %s listening on %s, %d backends\n", version.String(), bound, len(urls))

	srv := &http.Server{Handler: rt.Mux()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "vcrouter: %v: draining\n", s)
	case err := <-errc:
		fatal(err)
	}

	// Drain: finish in-flight HTTP exchanges, then stop the router
	// (admission off, health pollers down). The shards drain on their
	// own SIGTERMs; the router never owns their lifecycle.
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "vcrouter: shutdown:", err)
		}
		rt.Close()
	}()
	select {
	case <-done:
		fmt.Fprintln(os.Stderr, "vcrouter: drained")
	case <-time.After(*drainTimeout + 5*time.Second):
		fmt.Fprintln(os.Stderr, "vcrouter: drain timed out")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcrouter:", err)
	os.Exit(1)
}
