// Command experiments regenerates the paper's evaluation figures on the
// synthetic benchmark corpus:
//
//	go run ./cmd/experiments -fig all -scale 0.5
//
// Figures 10 and 11 share one full scheduling sweep; Figure 12 reruns
// three benchmarks with a second profiling input. Output goes to stdout
// (or -out).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"vcsched/internal/bench"
	"vcsched/internal/version"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 10, 11, 12, baselines or all")
	scale := flag.Float64("scale", 0.5, "corpus scale factor (1.0 = paper-sized run)")
	seed := flag.Int64("seed", 1, "live-in/live-out pin seed")
	workers := flag.Int("workers", 0, "parallel scheduling workers (0 = NumCPU)")
	out := flag.String("out", "", "write output to this file instead of stdout")
	t1 := flag.Duration("t1", 100*time.Millisecond, "scaled '1 second' threshold")
	t2 := flag.Duration("t2", 1*time.Second, "scaled '1 minute' threshold")
	t3 := flag.Duration("t3", 3*time.Second, "scaled '4 minute' threshold")
	verbose := flag.Bool("v", false, "progress output")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("experiments", version.String())
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	cfg := bench.Config{
		Scale:      *scale,
		Seed:       *seed,
		Workers:    *workers,
		Verbose:    *verbose,
		Thresholds: []time.Duration{*t1, *t2, *t3},
	}

	start := time.Now()
	needSweep := *fig == "all" || *fig == "10" || *fig == "11"
	if needSweep {
		results, err := bench.RunAll(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *fig == "all" || *fig == "10" {
			bench.Figure10(w, cfg, results)
		}
		if *fig == "all" || *fig == "11" {
			bench.Figure11(w, cfg, results)
		}
	}
	if *fig == "all" || *fig == "12" {
		if err := bench.Figure12(w, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *fig == "baselines" {
		if err := bench.BaselineComparison(w, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(w, "total harness time: %v (scale %.2f)\n", time.Since(start).Round(time.Second), *scale)
}
