// Command vcschedd is the long-running scheduling daemon: an HTTP/JSON
// front end over internal/service. It amortizes the SG/DP search
// across traffic with a content-addressed result cache, coalesces
// concurrent duplicate submissions, sheds load when the bounded
// admission queue fills, and drains gracefully on SIGTERM.
//
//	go run ./cmd/vcschedd -addr 127.0.0.1:8457
//
// API:
//
//	POST /v1/schedule   schedule one or more .sb sources (see
//	                    service.WireRequest); answers 200, or 422 when
//	                    every block in the batch hard-failed (the
//	                    response names the error-taxonomy classes), or
//	                    400 on malformed input
//	GET  /v1/healthz    "ok" (503 "draining" during drain)
//	GET  /v1/statsz     counter snapshot, deterministic field order
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"vcsched/internal/core"
	"vcsched/internal/ir"
	"vcsched/internal/machine"
	"vcsched/internal/resilient"
	"vcsched/internal/service"
	"vcsched/internal/version"
)

// defaults carries the per-request fallbacks requests may omit.
type defaults struct {
	machineKey string
	pinSeed    int64
	maxSteps   int
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8457", "listen address (port 0 = pick a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for harnesses)")
	machineKey := flag.String("machine", "2c1l", "default machine for requests that name none")
	seed := flag.Int64("seed", 1, "default live-in/live-out pin seed")
	steps := flag.Int("steps", 20000, "default deduction step budget per scheduling attempt (0 = core default)")
	workers := flag.Int("workers", 0, "worker pool size (0 = from -parallel)")
	parallel := flag.Int("parallel", 4, "base parallelism the pool is sized from when -workers is 0")
	queueDepth := flag.Int("queue", 0, "admission queue bound (0 = 4x workers); a full queue sheds")
	cacheEntries := flag.Int("cache", 0, "result cache entries (0 = 4096, negative = disable)")
	deadline := flag.Duration("deadline", 5*time.Second, "default per-request deadline")
	maxDeadline := flag.Duration("max-deadline", 60*time.Second, "cap on requested deadlines")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "how long SIGTERM waits for in-flight work")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("vcschedd", version.String())
		return
	}
	if _, err := machine.ByKey(*machineKey); err != nil {
		fatal(err)
	}

	svc := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheEntries:    *cacheEntries,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		Ladder:          ladderConfig(*steps, *parallel),
	})
	mux := newMux(svc, defaults{machineKey: *machineKey, pinSeed: *seed, maxSteps: *steps})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "vcschedd %s listening on %s\n", version.String(), bound)

	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "vcschedd: %v: draining\n", s)
	case err := <-errc:
		fatal(err)
	}

	// Drain: stop accepting connections, finish in-flight HTTP
	// exchanges (Shutdown), then drain the service's queue and worker
	// pool (Close). The watchdog turns a wedged drain into a non-zero
	// exit instead of a hang.
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "vcschedd: shutdown:", err)
		}
		svc.Close()
	}()
	select {
	case <-done:
		fmt.Fprintln(os.Stderr, "vcschedd: drained")
	case <-time.After(*drainTimeout + 5*time.Second):
		fmt.Fprintln(os.Stderr, "vcschedd: drain timed out")
		os.Exit(1)
	}
}

// ladderConfig builds the degradation-ladder template the service's
// workers run: default tier-2 retries/decay, the given step budget as
// the base search bound. Parallelism sizes the pool (each search then
// runs the serial driver — identical results, see internal/service).
func ladderConfig(steps, parallel int) resilient.Options {
	return resilient.Options{Core: core.Options{MaxSteps: steps, Parallelism: parallel}}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcschedd:", err)
	os.Exit(1)
}

// newMux builds the daemon's handler; split from main so the HTTP
// surface is testable with httptest.
func newMux(svc *service.Service, d defaults) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/schedule", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var wreq service.WireRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20))
		if err := dec.Decode(&wreq); err != nil {
			http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
			return
		}
		reqs, err := buildRequests(&wreq, d)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results := svc.SubmitBatch(reqs)
		resp := buildResponse(results)
		status := http.StatusOK
		switch {
		case resp.AllHardFailed:
			// The daemon-side analogue of cmd/vcsched exiting non-zero
			// when every block in a batch hard-fails: a non-2xx status
			// plus the taxonomy class names.
			status = http.StatusUnprocessableEntity
			fmt.Fprintf(os.Stderr, "vcschedd: batch of %d: every block hard-failed (taxonomy: %s)\n",
				len(results), strings.Join(resp.Taxonomies, ", "))
		case resp.AllShed:
			// Every block was refused by admission control: 429 with a
			// retry hint derived from queue depth × recent service time
			// (service.RetryAfter). Retry-After is the standard header
			// (integer seconds, rounded up so it is never 0); the
			// millisecond-precision hint rides in Retry-After-Ms and in
			// the body for clients that can use it.
			status = http.StatusTooManyRequests
			hint := svc.RetryAfter()
			resp.RetryAfterMS = int64(hint / time.Millisecond)
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int64((hint+time.Second-1)/time.Second)))
			w.Header().Set("Retry-After-Ms", fmt.Sprintf("%d", resp.RetryAfterMS))
		}
		writeJSON(w, status, resp)
	})
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if svc.Stats().Draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	return mux
}

// buildRequests expands a wire request into one service request per
// superblock across all .sb sources.
func buildRequests(wreq *service.WireRequest, d defaults) ([]*service.Request, error) {
	key := wreq.Machine
	if key == "" {
		key = d.machineKey
	}
	m, err := machine.ByKey(key)
	if err != nil {
		return nil, err
	}
	seed := wreq.PinSeed
	if seed == 0 {
		seed = d.pinSeed
	}
	steps := wreq.MaxSteps
	if steps == 0 {
		steps = d.maxSteps
	}
	var reqs []*service.Request
	for i, src := range wreq.Blocks {
		blocks, err := ir.ReadAll(strings.NewReader(src))
		if err != nil {
			return nil, fmt.Errorf("blocks[%d]: %w", i, err)
		}
		for _, sb := range blocks {
			req := &service.Request{
				SB:       sb,
				Machine:  m,
				PinSeed:  seed,
				Deadline: time.Duration(wreq.TimeoutMS) * time.Millisecond,
				Core:     core.Options{MaxSteps: steps},
			}
			if err := req.Validate(); err != nil {
				return nil, err
			}
			reqs = append(reqs, req)
		}
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("no superblocks in request")
	}
	return reqs, nil
}

// buildResponse converts results and computes the batch verdicts.
func buildResponse(results []service.Result) service.WireResponse {
	resp := service.WireResponse{Results: make([]service.WireResult, len(results))}
	allHard := len(results) > 0
	allShed := len(results) > 0
	tax := map[string]bool{}
	for i, r := range results {
		resp.Results[i] = r.ToWire()
		if r.HardFailure {
			tax[r.Taxonomy] = true
		} else {
			allHard = false
		}
		if !r.Shed {
			allShed = false
		}
	}
	if allHard {
		resp.AllHardFailed = true
		for name := range tax {
			resp.Taxonomies = append(resp.Taxonomies, name)
		}
		sort.Strings(resp.Taxonomies)
	}
	resp.AllShed = allShed
	return resp
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
