// Command vcschedd is the long-running scheduling daemon: an HTTP/JSON
// front end over internal/service. It amortizes the SG/DP search
// across traffic with a content-addressed result cache, coalesces
// concurrent duplicate submissions, sheds load when the bounded
// admission queue fills, and drains gracefully on SIGTERM.
//
//	go run ./cmd/vcschedd -addr 127.0.0.1:8457
//
// The HTTP surface (POST /v1/schedule, GET /v1/healthz, GET
// /v1/statsz) lives in internal/httpapi, shared with the vcrouter
// fleet front-end so the two cannot drift.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vcsched/internal/core"
	"vcsched/internal/httpapi"
	"vcsched/internal/machine"
	"vcsched/internal/resilient"
	"vcsched/internal/service"
	"vcsched/internal/version"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8457", "listen address (port 0 = pick a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for harnesses)")
	machineKey := flag.String("machine", "2c1l", "default machine for requests that name none")
	seed := flag.Int64("seed", 1, "default live-in/live-out pin seed")
	steps := flag.Int("steps", 20000, "default deduction step budget per scheduling attempt (0 = core default)")
	workers := flag.Int("workers", 0, "worker pool size (0 = from -parallel)")
	parallel := flag.Int("parallel", 4, "base parallelism the pool is sized from when -workers is 0")
	queueDepth := flag.Int("queue", 0, "admission queue bound (0 = 4x workers); a full queue sheds")
	cacheEntries := flag.Int("cache", 0, "result cache entries (0 = 4096, negative = disable)")
	deadline := flag.Duration("deadline", 5*time.Second, "default per-request deadline")
	maxDeadline := flag.Duration("max-deadline", 60*time.Second, "cap on requested deadlines")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "how long SIGTERM waits for in-flight work")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("vcschedd", version.String())
		return
	}
	if _, err := machine.ByKey(*machineKey); err != nil {
		fatal(err)
	}

	svc := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheEntries:    *cacheEntries,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		Ladder:          ladderConfig(*steps, *parallel),
	})
	mux := httpapi.SchedulerMux(svc, httpapi.Defaults{MachineKey: *machineKey, PinSeed: *seed, MaxSteps: *steps})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "vcschedd %s listening on %s\n", version.String(), bound)

	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "vcschedd: %v: draining\n", s)
	case err := <-errc:
		fatal(err)
	}

	// Drain: stop accepting connections, finish in-flight HTTP
	// exchanges (Shutdown), then drain the service's queue and worker
	// pool (Close). The watchdog turns a wedged drain into a non-zero
	// exit instead of a hang.
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "vcschedd: shutdown:", err)
		}
		svc.Close()
	}()
	select {
	case <-done:
		fmt.Fprintln(os.Stderr, "vcschedd: drained")
	case <-time.After(*drainTimeout + 5*time.Second):
		fmt.Fprintln(os.Stderr, "vcschedd: drain timed out")
		os.Exit(1)
	}
}

// ladderConfig builds the degradation-ladder template the service's
// workers run: default tier-2 retries/decay, the given step budget as
// the base search bound. Parallelism sizes the pool (each search then
// runs the serial driver — identical results, see internal/service).
func ladderConfig(steps, parallel int) resilient.Options {
	return resilient.Options{Core: core.Options{MaxSteps: steps, Parallelism: parallel}}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcschedd:", err)
	os.Exit(1)
}
