package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vcsched/internal/core"
	"vcsched/internal/difftest"
	"vcsched/internal/faultpoint"
	"vcsched/internal/httpapi"
	"vcsched/internal/ir"
	"vcsched/internal/leakcheck"
	"vcsched/internal/loadsim"
	"vcsched/internal/resilient"
	"vcsched/internal/service"
	"vcsched/internal/vcclient"
	"vcsched/internal/version"
)

func newTestServer(t *testing.T) (*httptest.Server, *service.Service) {
	t.Helper()
	return newTestServerWithConfig(t, service.Config{
		Workers:         2,
		DefaultDeadline: 30 * time.Second,
		Ladder:          resilient.Options{Core: core.Options{MaxSteps: 20000}},
	})
}

// newTestServerWithConfig stands up the daemon mux over a service with
// a caller-chosen config — the hook tests use it to swap the resilient
// ladder for a hollow runner.
func newTestServerWithConfig(t *testing.T, cfg service.Config) (*httptest.Server, *service.Service) {
	t.Helper()
	svc := service.New(cfg)
	srv := httptest.NewServer(httpapi.SchedulerMux(svc, httpapi.Defaults{MachineKey: "2c1l", PinSeed: 1, MaxSteps: 20000}))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv, svc
}

func postSchedule(t *testing.T, srv *httptest.Server, wreq service.WireRequest) (int, service.WireResponse) {
	t.Helper()
	body, err := json.Marshal(wreq)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wresp service.WireResponse
	if err := json.NewDecoder(resp.Body).Decode(&wresp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, wresp
}

func TestScheduleSingleBatchAndCache(t *testing.T) {
	srv, _ := newTestServer(t)

	status, resp := postSchedule(t, srv, service.WireRequest{Blocks: []string{ir.PaperFigure1().String()}})
	if status != http.StatusOK {
		t.Fatalf("single: status %d", status)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("single: %d results", len(resp.Results))
	}
	cold := resp.Results[0]
	if cold.Error != "" || cold.Schedule == "" || cold.Taxonomy != "ok" {
		t.Fatalf("single: bad result %+v", cold)
	}
	if cold.CacheHit {
		t.Fatal("single: first submission reported a cache hit")
	}

	// The same block again is a cache hit with byte-identical payload.
	status, resp = postSchedule(t, srv, service.WireRequest{Blocks: []string{ir.PaperFigure1().String()}})
	if status != http.StatusOK {
		t.Fatalf("warm: status %d", status)
	}
	warm := resp.Results[0]
	if !warm.CacheHit {
		t.Fatal("warm: second submission missed the cache")
	}
	if warm.Schedule != cold.Schedule || warm.ExitCycles != cold.ExitCycles || warm.Tier != cold.Tier {
		t.Fatal("warm: cached response not byte-identical to cold run")
	}

	// A batch keeps request order; a multi-block source expands.
	status, resp = postSchedule(t, srv, service.WireRequest{
		Blocks: []string{ir.Diamond().String(), ir.PaperFigure1().String()},
	})
	if status != http.StatusOK {
		t.Fatalf("batch: status %d", status)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("batch: %d results", len(resp.Results))
	}
	if resp.Results[0].Block != ir.Diamond().Name || resp.Results[1].Block != ir.PaperFigure1().Name {
		t.Fatalf("batch: results out of order: %s, %s", resp.Results[0].Block, resp.Results[1].Block)
	}
	if resp.AllHardFailed {
		t.Fatal("batch: spurious all-hard-failed verdict")
	}
}

func TestScheduleAllHardFailedAnswers422(t *testing.T) {
	faultpoint.Reset()
	t.Cleanup(faultpoint.Reset)
	srv, _ := newTestServer(t)

	// Every worker execution panics: the whole batch hard-fails, and the
	// daemon must say so with a non-2xx status and the taxonomy names.
	faultpoint.Arm("service.worker", faultpoint.Fault{Kind: faultpoint.KindPanic})
	status, resp := postSchedule(t, srv, service.WireRequest{
		Blocks: []string{ir.PaperFigure1().String(), ir.Diamond().String()},
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", status)
	}
	if !resp.AllHardFailed {
		t.Fatal("AllHardFailed not set")
	}
	if len(resp.Taxonomies) != 1 || resp.Taxonomies[0] != "panic" {
		t.Fatalf("taxonomies %v, want [panic]", resp.Taxonomies)
	}
	for _, r := range resp.Results {
		if !r.HardFailure || r.Schedule != "" {
			t.Fatalf("result not a hard failure: %+v", r)
		}
	}

	// One surviving block flips the verdict back to 200.
	faultpoint.Reset()
	status, resp = postSchedule(t, srv, service.WireRequest{Blocks: []string{ir.Diamond().String()}})
	if status != http.StatusOK || resp.AllHardFailed {
		t.Fatalf("recovery: status %d allHardFailed %t", status, resp.AllHardFailed)
	}
}

func TestScheduleRejectsMalformedInput(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, err := http.Get(srv.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", resp.StatusCode)
	}

	for name, body := range map[string]string{
		"bad json":     "{",
		"no blocks":    `{"blocks":[]}`,
		"bad machine":  `{"blocks":["x"],"machine":"no-such-machine"}`,
		"malformed sb": `{"blocks":["not a superblock"]}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/schedule", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestHealthzFlipsToDrainingOnClose(t *testing.T) {
	srv, svc := newTestServer(t)

	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	svc.Close()
	resp, err = http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", resp.StatusCode)
	}
}

// TestDrainUnderHTTPLoad drains the daemon while hollow-backed requests
// are queued and in flight over real HTTP: every admitted request must
// come back 200/ok, requests racing the drain get the "draining"
// taxonomy, healthz flips to 503, and the pool leaves no goroutines
// behind.
func TestDrainUnderHTTPLoad(t *testing.T) {
	// The +4 slack covers httptest's keep-alive goroutines, which may
	// outlive the requests briefly while the server is still serving.
	before := runtime.NumGoroutine() + 4

	hollow := loadsim.NewHollowRunner(loadsim.HollowConfig{
		CostMin: 20 * time.Millisecond,
		CostMax: 40 * time.Millisecond,
	})
	srv, svc := newTestServerWithConfig(t, service.Config{
		Workers:         2,
		QueueDepth:      8,
		DefaultDeadline: 30 * time.Second,
		Runner:          hollow,
	})

	// Six distinct blocks: two in flight, four queued, all admitted
	// before the drain begins.
	const load = 6
	g := difftest.NewGen(11, 16)
	blocks := make([]string, load)
	for i := range blocks {
		blocks[i] = g.Next().String()
	}
	type answer struct {
		status int
		resp   service.WireResponse
	}
	answers := make([]answer, load)
	var wg sync.WaitGroup
	for i := 0; i < load; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, resp := postSchedule(t, srv, service.WireRequest{Blocks: []string{blocks[i]}})
			answers[i] = answer{status, resp}
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Stats().CacheMisses != load {
		if time.Now().After(deadline) {
			t.Fatalf("load not admitted: %+v", svc.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	svc.Close() // blocks until the queued and in-flight six finish
	wg.Wait()
	for i, a := range answers {
		if a.status != http.StatusOK || len(a.resp.Results) != 1 {
			t.Fatalf("request %d: status %d results %d", i, a.status, len(a.resp.Results))
		}
		if r := a.resp.Results[0]; r.Error != "" || r.Taxonomy != "ok" || r.Schedule == "" {
			t.Fatalf("admitted request %d lost to the drain: %+v", i, r)
		}
	}

	// A request after the drain began is refused, not dropped: every
	// block is shed, so the daemon answers 429 with a well-formed body
	// naming the "draining" taxonomy.
	status, resp := postSchedule(t, srv, service.WireRequest{Blocks: []string{blocks[0]}})
	if status != http.StatusTooManyRequests || len(resp.Results) != 1 {
		t.Fatalf("post-drain submit: status %d results %d, want 429", status, len(resp.Results))
	}
	if r := resp.Results[0]; !r.Shed || r.Taxonomy != "draining" {
		t.Fatalf("post-drain submit = %+v, want draining refusal", r)
	}
	hc, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hc.Body.Close()
	if hc.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", hc.StatusCode)
	}

	// The worker pool exited; the shared leak checker waits for the
	// goroutine count to settle back to the baseline.
	if err := leakcheck.Settle(before, 0); err != nil {
		t.Fatalf("goroutines leaked across drain: %v", err)
	}
}

// gatedRunner wedges every execution until release is closed, so the
// test can fill the worker and the admission queue deterministically.
type gatedRunner struct {
	started chan string
	release chan struct{}
}

func (r *gatedRunner) Run(req *service.Request, fp string, remaining time.Duration) (service.Result, bool) {
	r.started <- req.SB.Name
	<-r.release
	return service.Result{Block: req.SB.Name, Tier: "gated", Schedule: "gated\n", Taxonomy: "ok"}, false
}

// TestAllShedAnswers429WithRetryAfter pins the daemon's overload
// contract: when every block in a batch is refused by admission
// control the daemon answers 429 and carries its queue-drain estimate
// in Retry-After (integer seconds, never 0), Retry-After-Ms, and the
// body — and a vcclient pointed at the live daemon floors its backoff
// at that hint.
func TestAllShedAnswers429WithRetryAfter(t *testing.T) {
	runner := &gatedRunner{started: make(chan string, 8), release: make(chan struct{})}
	srv, svc := newTestServerWithConfig(t, service.Config{
		Workers:         1,
		QueueDepth:      1,
		DefaultDeadline: 30 * time.Second,
		Runner:          runner,
	})

	g := difftest.NewGen(23, 12)
	blockA, blockB, blockC := g.Next().String(), g.Next().String(), g.Next().String()

	// Fill capacity: A occupies the single worker, B the single queue
	// slot. Admission enqueues and bumps CacheMisses under one lock, so
	// CacheMisses == 2 means the queue slot is taken and the next
	// submission must shed.
	var wg sync.WaitGroup
	for _, src := range []string{blockA, blockB} {
		wg.Add(1)
		go func(src string) {
			defer wg.Done()
			status, resp := postSchedule(t, srv, service.WireRequest{Blocks: []string{src}})
			if status != http.StatusOK || resp.Results[0].Taxonomy != "ok" {
				t.Errorf("gated request: status %d result %+v", status, resp.Results[0])
			}
		}(src)
		if src == blockA {
			<-runner.started // the worker holds A before B is queued
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Stats().CacheMisses != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("load not admitted: %+v", svc.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	body, err := json.Marshal(service.WireRequest{Blocks: []string{blockC}})
	if err != nil {
		t.Fatal(err)
	}
	shedResp, err := http.Post(srv.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var shedBody service.WireResponse
	if err := json.NewDecoder(shedResp.Body).Decode(&shedBody); err != nil {
		t.Fatal(err)
	}
	shedResp.Body.Close()
	if shedResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d %+v, want 429", shedResp.StatusCode, shedBody)
	}

	if !shedBody.AllShed {
		t.Fatalf("429 body AllShed not set: %+v", shedBody)
	}
	for _, r := range shedBody.Results {
		if !r.Shed {
			t.Fatalf("429 carried a non-shed result: %+v", r)
		}
	}
	secs, err := strconv.ParseInt(shedResp.Header.Get("Retry-After"), 10, 64)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q (%v), want an integer >= 1", shedResp.Header.Get("Retry-After"), err)
	}
	ms, err := strconv.ParseInt(shedResp.Header.Get("Retry-After-Ms"), 10, 64)
	if err != nil || ms <= 0 {
		t.Fatalf("Retry-After-Ms = %q (%v), want a positive integer", shedResp.Header.Get("Retry-After-Ms"), err)
	}
	if shedBody.RetryAfterMS != ms {
		t.Fatalf("body retry_after_ms %d != header %d", shedBody.RetryAfterMS, ms)
	}

	// vcclient against the live daemon: with the backoff cap below the
	// hint, every recorded wait must equal the Retry-After-Ms floor.
	var sleepMu sync.Mutex
	var sleeps []time.Duration
	client, err := vcclient.New(vcclient.Config{
		BaseURL:     srv.URL,
		Retries:     2,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
		Sleep: func(d time.Duration) {
			sleepMu.Lock()
			sleeps = append(sleeps, d)
			sleepMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cresp, err := client.Schedule(service.WireRequest{Blocks: []string{blockC}})
	if err != nil || !cresp.AllShed {
		t.Fatalf("client.Schedule = %+v, %v; want the shed verdict after exhausted retries", cresp, err)
	}
	st := client.Stats()
	if st.Sheds != 3 || st.Retries != 2 {
		t.Fatalf("client stats = %+v, want 3 sheds / 2 retries", st)
	}
	sleepMu.Lock()
	recorded := append([]time.Duration(nil), sleeps...)
	sleepMu.Unlock()
	if len(recorded) != 2 {
		t.Fatalf("client backoffs = %v, want 2", recorded)
	}
	for i, d := range recorded {
		if d < time.Duration(ms)*time.Millisecond {
			t.Fatalf("backoff %d = %v below the daemon's %dms hint", i, d, ms)
		}
	}

	close(runner.release)
	wg.Wait()
}

func TestStatszDeterministicBytes(t *testing.T) {
	srv, _ := newTestServer(t)
	postSchedule(t, srv, service.WireRequest{Blocks: []string{ir.PaperFigure1().String()}})

	get := func() string {
		resp, err := http.Get(srv.URL + "/v1/statsz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("statsz: status %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	a, b := get(), get()
	if a != b {
		t.Fatalf("two statsz snapshots of an idle service differ:\n%s\n%s", a, b)
	}

	// Field order is struct order, so the snapshot is diffable; the
	// stamped version leads.
	var st service.Stats
	if err := json.Unmarshal([]byte(a), &st); err != nil {
		t.Fatal(err)
	}
	if st.Version != version.String() {
		t.Fatalf("statsz version %q, want %q", st.Version, version.String())
	}
	if st.Requests < 1 || st.Scheduled < 1 {
		t.Fatalf("statsz counters did not move: %+v", st)
	}
	order := []string{`"version"`, `"workers"`, `"queue_depth"`, `"requests"`, `"cache_hits"`, `"tier_sg"`,
		`"nogoods"`, `"nogood_propagated"`, `"nogood_probes"`, `"nogood_refuted"`, `"nogood_hits"`}
	last := -1
	for _, key := range order {
		i := strings.Index(a, key)
		if i <= last {
			t.Fatalf("statsz field %s out of order in:\n%s", key, a)
		}
		last = i
	}
}
