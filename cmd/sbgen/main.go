// Command sbgen emits the synthetic benchmark corpora as .sb files, one
// file per application:
//
//	go run ./cmd/sbgen -dir corpus -scale 0.5 -input 0
//
// With -app only that application is generated; with -dir "" the blocks
// stream to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vcsched/internal/version"
	"vcsched/internal/workload"
)

func main() {
	dir := flag.String("dir", "corpus", "output directory (empty = stdout)")
	scale := flag.Float64("scale", 1.0, "corpus scale factor")
	input := flag.Int("input", 0, "profile input (0 = ref, 1 = alternative)")
	appName := flag.String("app", "", "generate only this benchmark")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("sbgen", version.String())
		return
	}

	profiles := workload.Benchmarks()
	if *appName != "" {
		p, err := workload.BenchmarkByName(*appName)
		if err != nil {
			fatal(err)
		}
		profiles = []workload.AppProfile{p}
	}

	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
	}
	total := 0
	for _, p := range profiles {
		app := p.Generate(*scale, *input)
		total += len(app.Blocks)
		if *dir == "" {
			for _, sb := range app.Blocks {
				if err := sb.Write(os.Stdout); err != nil {
					fatal(err)
				}
			}
			continue
		}
		path := filepath.Join(*dir, fmt.Sprintf("%s.input%d.sb", p.Name, *input))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		for _, sb := range app.Blocks {
			if err := sb.Write(f); err != nil {
				f.Close()
				fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d superblocks)\n", path, len(app.Blocks))
	}
	fmt.Fprintf(os.Stderr, "%d superblocks total\n", total)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbgen:", err)
	os.Exit(1)
}
