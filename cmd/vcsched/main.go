// Command vcsched schedules superblocks from .sb files on a clustered
// VLIW machine with the virtual-cluster scheduler, the CARS baseline, or
// both:
//
//	go run ./cmd/vcsched -machine 4c1l -algo both block.sb
//
// With no file arguments it reads one .sb stream from stdin. The paper's
// Figure 1 example is built in: pass -example instead of files.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"vcsched/internal/cars"
	"vcsched/internal/core"
	"vcsched/internal/ir"
	"vcsched/internal/machine"
	"vcsched/internal/resilient"
	"vcsched/internal/sched"
	"vcsched/internal/sg"
	"vcsched/internal/workload"
)

func main() {
	machName := flag.String("machine", "2c1l", "target: 2c1l, 4c1l, 4c2l, sec5 (paper §5 example)")
	algo := flag.String("algo", "both", "scheduler: vc, cars or both")
	timeout := flag.Duration("timeout", 5*time.Second, "VC scheduling timeout per block")
	parallel := flag.Int("parallel", 1, "portfolio search workers per block (1 = serial driver; results are identical, only wall-clock changes)")
	example := flag.Bool("example", false, "schedule the paper's Figure 1 superblock")
	showSched := flag.Bool("print", true, "print the schedules, not just the metrics")
	dot := flag.Bool("dot", false, "emit Graphviz DOT for each block's dependence and scheduling graphs instead of scheduling")
	save := flag.String("save", "", "append the VC schedules in .sched form to this file")
	seed := flag.Int64("seed", 1, "live-in/live-out pin seed")
	resil := flag.Bool("resilient", false, "run the VC side through the degradation ladder (SG → retry → CARS → naive); every block ends with a valid schedule")
	report := flag.Bool("report", false, "with -resilient, print the per-block outcome record (tier, retries, error chain per attempt)")
	flag.Parse()

	m, err := pickMachine(*machName)
	if err != nil {
		fatal(err)
	}

	var blocks []*ir.Superblock
	switch {
	case *example:
		blocks = []*ir.Superblock{ir.PaperFigure1()}
	case flag.NArg() == 0:
		blocks, err = ir.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
	default:
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			bs, err := ir.ReadAll(f)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			blocks = append(blocks, bs...)
		}
	}
	if len(blocks) == 0 {
		fatal(fmt.Errorf("no superblocks to schedule"))
	}

	if *dot {
		for _, sb := range blocks {
			fmt.Print(sb.Dot())
			fmt.Print(sg.Build(sb, m).Dot())
		}
		return
	}

	var saveTo io.Writer
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		saveTo = f
	}

	for _, sb := range blocks {
		pins := workload.PinsFor(sb, m.Clusters, *seed)
		fmt.Printf("== %s (%d instructions) on %s\n", sb.Name, sb.N(), m)
		if *algo == "vc" || *algo == "both" {
			if *resil {
				runResilient(sb, m, pins, *timeout, *parallel, *showSched, *report, saveTo)
			} else {
				runVC(sb, m, pins, *timeout, *parallel, *showSched, saveTo)
			}
		}
		if *algo == "cars" || *algo == "both" {
			runCARS(sb, m, pins, *showSched)
		}
	}
}

func runVC(sb *ir.Superblock, m *machine.Config, pins sched.Pins, timeout time.Duration, parallel int, show bool, saveTo io.Writer) {
	start := time.Now()
	s, stats, err := core.Schedule(sb, m, core.Options{Pins: pins, Timeout: timeout, Parallelism: parallel})
	el := time.Since(start).Round(time.Microsecond)
	if err != nil {
		fmt.Printf("  VC:   failed after %v: %v (%d attempts, %d cancelled)\n",
			el, err, stats.AttemptsLaunched, stats.AttemptsCancelled)
		return
	}
	fmt.Printf("  VC:   AWCT %.3f (lower bound %.3f, %d AWCT values tried, %d comms, %v)\n",
		s.AWCT(), stats.MinAWCT, stats.AWCTTried, s.NumComms(), el)
	if parallel > 1 {
		fmt.Printf("        portfolio: %d attempts launched, %d cancelled, %d deduction steps\n",
			stats.AttemptsLaunched, stats.AttemptsCancelled, stats.StepsSpent)
	}
	fmt.Printf("        exits %s\n", sched.FormatExitCycles(s.ExitCycles()))
	if show {
		indent(os.Stdout, s.Format())
	}
	if saveTo != nil {
		if err := s.WriteText(saveTo); err != nil {
			fatal(err)
		}
	}
}

func runResilient(sb *ir.Superblock, m *machine.Config, pins sched.Pins, timeout time.Duration, parallel int, show, report bool, saveTo io.Writer) {
	s, out, err := resilient.Schedule(sb, m, resilient.Options{
		Core: core.Options{Pins: pins, Timeout: timeout, Parallelism: parallel},
	})
	if err != nil {
		fmt.Printf("  VC:   every tier failed after %v: %v\n", out.Elapsed.Round(time.Microsecond), err)
		return
	}
	fmt.Printf("  VC:   AWCT %.3f via tier %s (%d comms, %v)\n",
		out.AWCT, out.Tier, s.NumComms(), out.Elapsed.Round(time.Microsecond))
	if report {
		indent(os.Stdout, out.String()+"\n")
	}
	if show {
		indent(os.Stdout, s.Format())
	}
	if saveTo != nil {
		if err := s.WriteText(saveTo); err != nil {
			fatal(err)
		}
	}
}

func runCARS(sb *ir.Superblock, m *machine.Config, pins sched.Pins, show bool) {
	start := time.Now()
	s, err := cars.Schedule(sb, m, pins)
	el := time.Since(start).Round(time.Microsecond)
	if err != nil {
		fmt.Printf("  CARS: failed: %v\n", err)
		return
	}
	fmt.Printf("  CARS: AWCT %.3f (%d comms, %v)\n", s.AWCT(), s.NumComms(), el)
	if show {
		indent(os.Stdout, s.Format())
	}
}

func pickMachine(name string) (*machine.Config, error) {
	return machine.ByKey(name)
}

func indent(w io.Writer, s string) {
	for _, line := range splitLines(s) {
		fmt.Fprintf(w, "    %s\n", line)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcsched:", err)
	os.Exit(1)
}
