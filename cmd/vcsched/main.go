// Command vcsched schedules superblocks from .sb files on a clustered
// VLIW machine with the virtual-cluster scheduler, the CARS baseline, or
// both:
//
//	go run ./cmd/vcsched -machine 4c1l -algo both block.sb
//
// With no file arguments it reads one .sb stream from stdin. The paper's
// Figure 1 example is built in: pass -example instead of files.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"vcsched/internal/cars"
	"vcsched/internal/core"
	"vcsched/internal/ir"
	"vcsched/internal/machine"
	"vcsched/internal/resilient"
	"vcsched/internal/sched"
	"vcsched/internal/sg"
	"vcsched/internal/version"
	"vcsched/internal/workload"
)

func main() {
	machName := flag.String("machine", "2c1l", "target: 2c1l, 4c1l, 4c2l, sec5 (paper §5 example)")
	algo := flag.String("algo", "both", "scheduler: vc, cars or both")
	timeout := flag.Duration("timeout", 5*time.Second, "VC scheduling timeout per block")
	parallel := flag.Int("parallel", 1, "portfolio search workers per block (1 = serial driver; results are identical, only wall-clock changes)")
	example := flag.Bool("example", false, "schedule the paper's Figure 1 superblock")
	showSched := flag.Bool("print", true, "print the schedules, not just the metrics")
	dot := flag.Bool("dot", false, "emit Graphviz DOT for each block's dependence and scheduling graphs instead of scheduling")
	save := flag.String("save", "", "append the VC schedules in .sched form to this file")
	seed := flag.Int64("seed", 1, "live-in/live-out pin seed")
	learn := flag.String("learn", core.LearnOn, "conflict learning: on (observe, deterministic default), off (escape hatch), aggressive (nogood hits skip probes; schedules may differ)")
	resil := flag.Bool("resilient", false, "run the VC side through the degradation ladder (SG → retry → CARS → naive); every block ends with a valid schedule")
	report := flag.Bool("report", false, "with -resilient, print the per-block outcome record (tier, retries, error chain per attempt)")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("vcsched", version.String())
		return
	}
	switch *learn {
	case core.LearnOn, core.LearnOff, core.LearnAggressive:
	default:
		fatal(fmt.Errorf("unknown -learn mode %q (want on, off or aggressive)", *learn))
	}

	m, err := pickMachine(*machName)
	if err != nil {
		fatal(err)
	}

	var blocks []*ir.Superblock
	switch {
	case *example:
		blocks = []*ir.Superblock{ir.PaperFigure1()}
	case flag.NArg() == 0:
		blocks, err = ir.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
	default:
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			bs, err := ir.ReadAll(f)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			blocks = append(blocks, bs...)
		}
	}
	if len(blocks) == 0 {
		fatal(fmt.Errorf("no superblocks to schedule"))
	}

	if *dot {
		for _, sb := range blocks {
			fmt.Print(sb.Dot())
			fmt.Print(sg.Build(sb, m).Dot())
		}
		return
	}

	var saveTo io.Writer
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		saveTo = f
	}

	var b batch
	for _, sb := range blocks {
		pins := workload.PinsFor(sb, m.Clusters, *seed)
		fmt.Printf("== %s (%d instructions) on %s\n", sb.Name, sb.N(), m)
		var outcomes []error
		if *algo == "vc" || *algo == "both" {
			var err error
			if *resil {
				err = runResilient(sb, m, pins, *timeout, *parallel, *learn, *showSched, *report, saveTo)
			} else {
				err = runVC(sb, m, pins, *timeout, *parallel, *learn, *showSched, saveTo)
			}
			outcomes = append(outcomes, err)
		}
		if *algo == "cars" || *algo == "both" {
			outcomes = append(outcomes, runCARS(sb, m, pins, *showSched))
		}
		b.record(outcomes)
	}
	if allHard, taxonomies := b.verdict(); allHard {
		fmt.Fprintf(os.Stderr, "vcsched: every block hard-failed (%d of %d; taxonomy: %s)\n",
			b.hard, b.blocks, strings.Join(taxonomies, ", "))
		os.Exit(1)
	}
}

// batch tracks per-block outcomes across the run so the process can
// report a batch verdict: a block hard-fails when no selected scheduler
// produced a schedule for it, and when every block hard-fails the
// process exits non-zero naming the error-taxonomy classes seen (the
// CLI analogue of vcschedd answering 422).
type batch struct {
	blocks   int
	hard     int
	failures int
	taxonomy map[string]bool
}

// record notes one block's per-scheduler outcomes, one entry per
// scheduler run (nil = it produced a schedule). The block hard-fails
// only when at least one scheduler ran and every one errored.
func (b *batch) record(outcomes []error) {
	b.blocks++
	failed := 0
	for _, err := range outcomes {
		if err != nil {
			failed++
		}
	}
	b.failures += failed
	if len(outcomes) == 0 || failed < len(outcomes) {
		return
	}
	b.hard++
	if b.taxonomy == nil {
		b.taxonomy = map[string]bool{}
	}
	for _, err := range outcomes {
		b.taxonomy[resilient.Taxonomy(err)] = true
	}
}

// verdict reports whether every block in the batch hard-failed, with
// the sorted distinct taxonomy classes of the failures.
func (b *batch) verdict() (allHard bool, taxonomies []string) {
	if b.blocks == 0 || b.hard < b.blocks {
		return false, nil
	}
	for name := range b.taxonomy {
		taxonomies = append(taxonomies, name)
	}
	sort.Strings(taxonomies)
	return true, taxonomies
}

func runVC(sb *ir.Superblock, m *machine.Config, pins sched.Pins, timeout time.Duration, parallel int, learn string, show bool, saveTo io.Writer) error {
	start := time.Now()
	s, stats, err := core.Schedule(sb, m, core.Options{Pins: pins, Timeout: timeout, Parallelism: parallel, Learn: learn})
	el := time.Since(start).Round(time.Microsecond)
	if err != nil {
		fmt.Printf("  VC:   failed after %v: %v (%d attempts, %d cancelled)\n",
			el, err, stats.AttemptsLaunched, stats.AttemptsCancelled)
		return err
	}
	fmt.Printf("  VC:   AWCT %.3f (lower bound %.3f, %d AWCT values tried, %d comms, %v)\n",
		s.AWCT(), stats.MinAWCT, stats.AWCTTried, s.NumComms(), el)
	if parallel > 1 {
		fmt.Printf("        portfolio: %d attempts launched, %d cancelled, %d deduction steps\n",
			stats.AttemptsLaunched, stats.AttemptsCancelled, stats.StepsSpent)
	}
	if ln := stats.Learn; learn != core.LearnOff && ln.Probes > 0 {
		fmt.Printf("        learn: %d nogoods, %d propagated, %d/%d probes refuted, %d hits, %d steps saved\n",
			ln.Nogoods, ln.Propagated, ln.Refuted, ln.Probes, ln.Hits, ln.SavedSteps)
	}
	fmt.Printf("        exits %s\n", sched.FormatExitCycles(s.ExitCycles()))
	if show {
		indent(os.Stdout, s.Format())
	}
	if saveTo != nil {
		if err := s.WriteText(saveTo); err != nil {
			fatal(err)
		}
	}
	return nil
}

func runResilient(sb *ir.Superblock, m *machine.Config, pins sched.Pins, timeout time.Duration, parallel int, learn string, show, report bool, saveTo io.Writer) error {
	s, out, err := resilient.Schedule(sb, m, resilient.Options{
		Core: core.Options{Pins: pins, Timeout: timeout, Parallelism: parallel, Learn: learn},
	})
	if err != nil {
		fmt.Printf("  VC:   every tier failed after %v: %v\n", out.Elapsed.Round(time.Microsecond), err)
		return err
	}
	fmt.Printf("  VC:   AWCT %.3f via tier %s (%d comms, %v)\n",
		out.AWCT, out.Tier, s.NumComms(), out.Elapsed.Round(time.Microsecond))
	if report {
		indent(os.Stdout, out.String()+"\n")
	}
	if show {
		indent(os.Stdout, s.Format())
	}
	if saveTo != nil {
		if err := s.WriteText(saveTo); err != nil {
			fatal(err)
		}
	}
	return nil
}

func runCARS(sb *ir.Superblock, m *machine.Config, pins sched.Pins, show bool) error {
	start := time.Now()
	s, err := cars.Schedule(sb, m, pins)
	el := time.Since(start).Round(time.Microsecond)
	if err != nil {
		fmt.Printf("  CARS: failed: %v\n", err)
		return err
	}
	fmt.Printf("  CARS: AWCT %.3f (%d comms, %v)\n", s.AWCT(), s.NumComms(), el)
	if show {
		indent(os.Stdout, s.Format())
	}
	return nil
}

func pickMachine(name string) (*machine.Config, error) {
	return machine.ByKey(name)
}

func indent(w io.Writer, s string) {
	for _, line := range splitLines(s) {
		fmt.Fprintf(w, "    %s\n", line)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcsched:", err)
	os.Exit(1)
}
