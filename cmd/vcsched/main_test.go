package main

import (
	"errors"
	"reflect"
	"testing"

	"vcsched/internal/core"
)

func TestBatchVerdict(t *testing.T) {
	timeout := core.ErrTimeout
	exhausted := core.ErrExhausted

	cases := []struct {
		name     string
		outcomes [][]error
		allHard  bool
		taxonomy []string
	}{
		{
			name:     "all scheduled",
			outcomes: [][]error{{nil}, {nil, nil}},
		},
		{
			name:     "one scheduler survives the block",
			outcomes: [][]error{{timeout, nil}},
		},
		{
			name:     "some blocks survive",
			outcomes: [][]error{{timeout}, {nil}},
		},
		{
			name:     "every block hard-fails",
			outcomes: [][]error{{timeout}, {exhausted, timeout}},
			allHard:  true,
			taxonomy: []string{"exhausted", "timeout"},
		},
		{
			name:     "wrapped errors classify",
			outcomes: [][]error{{errors.Join(errors.New("tier sg"), timeout)}},
			allHard:  true,
			taxonomy: []string{"timeout"},
		},
		{
			name:     "no blocks is not a hard failure",
			outcomes: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b batch
			for _, o := range tc.outcomes {
				b.record(o)
			}
			allHard, taxonomy := b.verdict()
			if allHard != tc.allHard {
				t.Fatalf("allHard = %t, want %t", allHard, tc.allHard)
			}
			if !reflect.DeepEqual(taxonomy, tc.taxonomy) {
				t.Fatalf("taxonomy = %v, want %v", taxonomy, tc.taxonomy)
			}
		})
	}
}
